/**
 * @file
 * Tests for the fault-injection subsystem: plan parsing (CLI grammar and
 * JSON), topology rerouting around Down/Degraded paths, remote write
 * queue saturation, and run-level graceful degradation with
 * deterministic, reproducible fault reports.
 */

#include <gtest/gtest.h>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "common/logging.hh"
#include "core/remote_write_queue.hh"
#include "fault/fault_plan.hh"
#include "interconnect/topology.hh"

namespace gps
{
namespace
{

constexpr double smokeScale = 0.0625;

// --- CLI spec grammar -------------------------------------------------

TEST(FaultSpec, ParsesLinkDown)
{
    const FaultEvent ev = FaultPlan::parseSpec("link:down@2ms:gpu0-gpu1");
    EXPECT_EQ(ev.kind, FaultKind::LinkDown);
    EXPECT_EQ(ev.time, usToTicks(2000));
    EXPECT_EQ(ev.a, 0);
    EXPECT_EQ(ev.b, 1);
}

TEST(FaultSpec, ParsesDegradeWithFactorAndBareGpuIds)
{
    const FaultEvent ev =
        FaultPlan::parseSpec("link:degrade@500us:2-3:0.25");
    EXPECT_EQ(ev.kind, FaultKind::LinkDegrade);
    EXPECT_EQ(ev.time, usToTicks(500));
    EXPECT_EQ(ev.a, 2);
    EXPECT_EQ(ev.b, 3);
    EXPECT_DOUBLE_EQ(ev.factor, 0.25);
}

TEST(FaultSpec, ParsesPageRetireWithCount)
{
    const FaultEvent ev = FaultPlan::parseSpec("page:retire@1ms:gpu2:16");
    EXPECT_EQ(ev.kind, FaultKind::PageRetire);
    EXPECT_EQ(ev.a, 2);
    EXPECT_EQ(ev.count, 16u);
}

TEST(FaultSpec, ParsesWqWildcardAndRawTicks)
{
    const FaultEvent ev = FaultPlan::parseSpec("wq:saturate@12345:*");
    EXPECT_EQ(ev.kind, FaultKind::WqSaturate);
    EXPECT_EQ(ev.time, 12345u);
    EXPECT_EQ(ev.a, invalidGpu);
}

TEST(FaultSpec, DescribeRoundTrips)
{
    const char* specs[] = {
        "link:down@2ms:gpu0-gpu1",
        "link:degrade@1ms:0-1:0.5",
        "page:retire@0:gpu3:4",
        "wq:saturate@0:*",
    };
    for (const char* spec : specs) {
        const FaultEvent ev = FaultPlan::parseSpec(spec);
        const FaultEvent again = FaultPlan::parseSpec(ev.describe());
        EXPECT_EQ(again.kind, ev.kind) << spec;
        EXPECT_EQ(again.time, ev.time) << spec;
        EXPECT_EQ(again.a, ev.a) << spec;
        EXPECT_EQ(again.b, ev.b) << spec;
        EXPECT_DOUBLE_EQ(again.factor, ev.factor) << spec;
        EXPECT_EQ(again.count, ev.count) << spec;
    }
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    const char* bad[] = {
        "",
        "link:down",                      // no @time
        "link:down@2ms",                  // no target
        "link:frob@2ms:0-1",              // unknown kind
        "link:down@2xs:0-1",              // bad unit
        "link:down@2ms:0",                // one endpoint
        "link:degrade@2ms:0-1:1.5",       // factor out of (0, 1]
        "link:degrade@2ms:0-1:0",         // zero factor
        "page:retire@2ms:gpu1:zero",      // non-numeric count
        "wq:flood@0:*",                   // unknown wq action
        "link:down@2ms:0-1:extra:stuff",  // too many fields
    };
    for (const char* spec : bad)
        EXPECT_THROW(FaultPlan::parseSpec(spec), FatalError) << spec;
}

TEST(FaultSpec, PlanSortsByTimeKeepingCliOrderForTies)
{
    FaultPlan plan;
    plan.addSpec("link:down@2ms:0-1");
    plan.addSpec("link:down@1ms:0-2");
    plan.addSpec("link:restore@1ms:0-3");
    plan.sort();
    ASSERT_EQ(plan.events.size(), 3u);
    EXPECT_EQ(plan.events[0].time, usToTicks(1000));
    EXPECT_EQ(plan.events[0].b, 2);        // first 1ms spec stays first
    EXPECT_EQ(plan.events[1].kind, FaultKind::LinkRestore);
    EXPECT_EQ(plan.events[2].time, usToTicks(2000));
}

// --- JSON plans -------------------------------------------------------

TEST(FaultJson, ParsesFullPlan)
{
    const FaultPlan plan = FaultPlan::fromJsonText(R"({
        "seed": 42,
        "pcie_fallback": false,
        "events": [
            "link:down@2ms:gpu0-gpu1",
            "page:retire@1ms:gpu2:8"
        ]
    })");
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_FALSE(plan.pcieFallback);
    ASSERT_EQ(plan.events.size(), 2u);
    // fromJsonText sorts: the 1ms retire comes first.
    EXPECT_EQ(plan.events[0].kind, FaultKind::PageRetire);
    EXPECT_EQ(plan.events[1].kind, FaultKind::LinkDown);
}

TEST(FaultJson, DefaultsAndUnknownKeysAreTolerated)
{
    const FaultPlan plan = FaultPlan::fromJsonText(
        R"({"events": [], "comment": "ignored", "other": 3})");
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.seed, 0u);
    EXPECT_TRUE(plan.pcieFallback);
}

TEST(FaultJson, RejectsGarbage)
{
    const char* bad[] = {
        "",
        "not json",
        "[1,2,3]",
        R"({"events": "link:down@0:0-1"})", // events must be an array
        R"({"events": [42]})",              // events must be strings
        R"({"seed": "x"})",
        R"({} trailing)",
    };
    for (const char* text : bad)
        EXPECT_THROW(FaultPlan::fromJsonText(text), FatalError) << text;
}

// --- Topology rerouting ----------------------------------------------

class RerouteTest : public ::testing::Test
{
  protected:
    RerouteTest() : topo("topo", 4, InterconnectKind::Pcie3) {}

    Topology topo;
    FaultReport report;
};

TEST_F(RerouteTest, HealthyTopologyIsUntouched)
{
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 1000);
    topo.routeAroundFaults(traffic, report);
    EXPECT_EQ(traffic.at(0, 1), 1000u);
    EXPECT_EQ(report.reroutes, 0u);
}

TEST_F(RerouteTest, DownPathRelaysThroughSurvivor)
{
    topo.setPathState(0, 1, PathHealth::Down);
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 1000);
    traffic.add(2, 3, 500); // untouched bystander flow
    topo.routeAroundFaults(traffic, report);
    EXPECT_EQ(traffic.at(0, 1), 0u);
    // Relayed via the first reachable GPU (2): two healthy hops.
    EXPECT_EQ(traffic.at(0, 2), 1000u);
    EXPECT_EQ(traffic.at(2, 1), 1000u);
    EXPECT_EQ(traffic.at(2, 3), 500u);
    EXPECT_EQ(report.reroutes, 1u);
    EXPECT_EQ(report.reroutedBytes, 1000u);
    // Payload metric (data moved) is not double counted by the relay.
    EXPECT_EQ(traffic.payload(), 1500u);
}

TEST_F(RerouteTest, DegradedPathInflatesWireBytes)
{
    topo.setPathState(0, 1, PathHealth::Degraded, 0.25);
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 1000);
    topo.routeAroundFaults(traffic, report);
    // Quarter bandwidth = 4x the wire occupancy for the same payload.
    EXPECT_EQ(traffic.at(0, 1), 4000u);
    EXPECT_EQ(traffic.payload(), 1000u);
}

TEST_F(RerouteTest, RestoreHealsThePath)
{
    topo.setPathState(0, 1, PathHealth::Down);
    topo.setPathState(0, 1, PathHealth::Healthy);
    EXPECT_FALSE(topo.anyPathFault());
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 1000);
    topo.routeAroundFaults(traffic, report);
    EXPECT_EQ(traffic.at(0, 1), 1000u);
}

TEST_F(RerouteTest, IsolatedGpuFallsBackToPcieStaging)
{
    // GPU 0 loses every path: no relay exists, host staging kicks in.
    for (GpuId peer = 1; peer < 4; ++peer)
        topo.setPathState(0, peer, PathHealth::Down);
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 1000);
    topo.routeAroundFaults(traffic, report);
    EXPECT_EQ(report.pcieFallbacks, 1u);
    EXPECT_GE(report.pcieFallbackBytes, 1000u);
    EXPECT_EQ(report.reroutes, 0u);
}

TEST_F(RerouteTest, UnreachablePartitionIsFatalWithoutFallback)
{
    for (GpuId peer = 1; peer < 4; ++peer)
        topo.setPathState(0, peer, PathHealth::Down);
    topo.setPcieFallback(false);
    TrafficMatrix traffic(4);
    traffic.add(0, 1, 1000);
    EXPECT_THROW(topo.routeAroundFaults(traffic, report), FatalError);
}

TEST_F(RerouteTest, RejectsInvalidPathStates)
{
    EXPECT_THROW(topo.setPathState(0, 0, PathHealth::Down), FatalError);
    EXPECT_THROW(topo.setPathState(0, 9, PathHealth::Down), FatalError);
    EXPECT_THROW(
        topo.setPathState(0, 1, PathHealth::Degraded, 0.0), FatalError);
}

// --- Write queue saturation ------------------------------------------

TEST(WqSaturation, SaturatedModeCountsStallDrains)
{
    GpsConfig config;
    config.wqEntries = 64;
    RemoteWriteQueue queue("wq", config, 128, PageGeometry(64 * KiB));
    queue.setDrainCallback([](const WqEntry&) {});

    // Healthy: fill to just under the normal high watermark.
    for (Addr line = 0; line < 48; ++line)
        queue.insert(line * 128, 4, 1);
    EXPECT_EQ(queue.stallDrains(), 0u);

    // Saturated: the watermark collapses to wqEntries / divisor and
    // every forced drain stalls the producing SM.
    queue.setSaturated(true);
    for (Addr line = 100; line < 164; ++line)
        queue.insert(line * 128, 4, 1);
    EXPECT_GT(queue.stallDrains(), 0u);

    const std::uint64_t stalled = queue.stallDrains();
    queue.setSaturated(false);
    queue.insert(0x100000, 4, 1);
    EXPECT_EQ(queue.stallDrains(), stalled); // restored: no new stalls
}

// --- Run-level graceful degradation ----------------------------------

RunConfig
faultConfig(ParadigmKind paradigm, const std::string& spec)
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = smokeScale;
    config.paradigm = paradigm;
    if (!spec.empty()) {
        config.faultPlan.addSpec(spec);
        config.faultPlan.sort();
        config.faultPlan.seed = 7;
    }
    return config;
}

TEST(FaultRuns, EveryParadigmSurvivesALinkFault)
{
    for (const ParadigmKind paradigm : allParadigms()) {
        const RunResult result = runWorkload(
            "Jacobi", faultConfig(paradigm, "link:down@0:0-1"));
        EXPECT_GT(result.totalTime, 0u) << to_string(paradigm);
        ASSERT_TRUE(result.hasFaultReport) << to_string(paradigm);
        EXPECT_EQ(result.faultReport.faultsInjected, 1u);
        EXPECT_EQ(result.faultReport.linksDown, 1u);
    }
}

TEST(FaultRuns, SameSeedRunsAreByteIdentical)
{
    const RunConfig config =
        faultConfig(ParadigmKind::Gps, "link:down@0:0-1");
    const std::string a = resultToJson(runWorkload("Jacobi", config));
    const std::string b = resultToJson(runWorkload("Jacobi", config));
    EXPECT_EQ(a, b);
}

TEST(FaultRuns, BenignPlanMatchesNoPlanRun)
{
    // A restore on an already-healthy path exercises the whole engine
    // path without degrading anything: timing and traffic must match a
    // run with no fault engine at all.
    const RunResult clean =
        runWorkload("Jacobi", faultConfig(ParadigmKind::Gps, ""));
    const RunResult benign = runWorkload(
        "Jacobi", faultConfig(ParadigmKind::Gps, "link:restore@0:0-1"));
    EXPECT_FALSE(clean.hasFaultReport);
    ASSERT_TRUE(benign.hasFaultReport);
    EXPECT_EQ(benign.totalTime, clean.totalTime);
    EXPECT_EQ(benign.interconnectBytes, clean.interconnectBytes);
}

TEST(FaultRuns, LinkFaultNeverSpeedsUpGps)
{
    const RunResult clean =
        runWorkload("Jacobi", faultConfig(ParadigmKind::Gps, ""));
    const RunResult faulted = runWorkload(
        "Jacobi", faultConfig(ParadigmKind::Gps, "link:down@0:0-1"));
    EXPECT_GE(faulted.totalTime, clean.totalTime);
    EXPECT_GT(faulted.faultReport.reroutes, 0u);
}

TEST(FaultRuns, PageRetireDegradesReplicasAndCountsThem)
{
    const RunResult result = runWorkload(
        "Jacobi", faultConfig(ParadigmKind::Gps, "page:retire@0:gpu1:4"));
    ASSERT_TRUE(result.hasFaultReport);
    EXPECT_GE(result.faultReport.pagesRetired, 1u);
    EXPECT_DOUBLE_EQ(result.stats.get("faults.pages_retired"),
                     static_cast<double>(result.faultReport.pagesRetired));
}

TEST(FaultRuns, WqSaturationStallsShowUpInTiming)
{
    const RunResult clean =
        runWorkload("Jacobi", faultConfig(ParadigmKind::Gps, ""));
    const RunResult faulted = runWorkload(
        "Jacobi", faultConfig(ParadigmKind::Gps, "wq:saturate@0:*"));
    ASSERT_TRUE(faulted.hasFaultReport);
    EXPECT_EQ(faulted.faultReport.wqSaturations, 1u);
    EXPECT_GT(faulted.faultReport.wqSaturatedDrains, 0u);
    EXPECT_GT(faulted.faultReport.stallTicks, 0u);
    EXPECT_GT(faulted.totalTime, clean.totalTime);
}

TEST(FaultRuns, FaultBeyondTargetGpuCountIsFatal)
{
    EXPECT_THROW(
        runWorkload("Jacobi",
                    faultConfig(ParadigmKind::Gps, "link:down@0:0-7")),
        FatalError);
}

} // namespace
} // namespace gps
