/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace gps
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(7);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ZipfStaysInBoundsAndSkewsLow)
{
    Rng rng(7);
    std::uint64_t below_tenth = 0;
    const std::uint64_t n = 1000;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.zipf(n, 0.75);
        ASSERT_LT(v, n);
        if (v < n / 10)
            ++below_tenth;
    }
    // With exponent 1/(1-0.75)=4, P(X < n/10) = 0.1^(1/4) ~ 0.56.
    EXPECT_GT(below_tenth, 4500u);
}

TEST(ZipfTable, MatchesDirectInversionDrawForDraw)
{
    // The table is a drop-in for Rng::zipf: same uniform draw in, same
    // variate out, across small/large domains and mild/steep skews.
    const struct
    {
        std::uint64_t n;
        double s;
    } cases[] = {{1, 0.5},    {2, 0.75},     {37, 0.99},
                 {1000, 0.75}, {4096, 0.9},  {1 << 18, 0.6}};
    for (const auto& c : cases) {
        const ZipfTable table(c.n, c.s);
        Rng table_rng(42), direct_rng(42);
        for (int i = 0; i < 50000; ++i)
            ASSERT_EQ(table(table_rng), direct_rng.zipf(c.n, c.s))
                << "n=" << c.n << " s=" << c.s << " draw " << i;
    }
}

TEST(ZipfTable, HugeDomainFallsBackToDirectFormula)
{
    // Domains past the table cap skip precomputation but must still
    // reproduce the direct inversion exactly.
    const std::uint64_t n = 1ULL << 32;
    const ZipfTable table(n, 0.75);
    Rng a(7), b(7);
    for (int i = 0; i < 20000; ++i)
        ASSERT_EQ(table(a), b.zipf(n, 0.75));
}

TEST(ZipfTable, RealizedDistributionIsBoundedPareto)
{
    // Documented law: P(X < x) = (x/n)^(1-s). Check two quantiles.
    const std::uint64_t n = 100000;
    const double s = 0.75;
    const ZipfTable table(n, s);
    Rng rng(99);
    const int draws = 100000;
    int below_tenth = 0, below_half = 0;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t v = table(rng);
        ASSERT_LT(v, n);
        below_tenth += v < n / 10 ? 1 : 0;
        below_half += v < n / 2 ? 1 : 0;
    }
    // (0.1)^0.25 ~ 0.562, (0.5)^0.25 ~ 0.841.
    EXPECT_NEAR(below_tenth / static_cast<double>(draws), 0.562, 0.01);
    EXPECT_NEAR(below_half / static_cast<double>(draws), 0.841, 0.01);
}

} // namespace
} // namespace gps
