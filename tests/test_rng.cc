/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace gps
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(7);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ZipfStaysInBoundsAndSkewsLow)
{
    Rng rng(7);
    std::uint64_t below_tenth = 0;
    const std::uint64_t n = 1000;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.zipf(n, 0.75);
        ASSERT_LT(v, n);
        if (v < n / 10)
            ++below_tenth;
    }
    // With exponent 1/(1-0.75)=4, P(X < n/10) = 0.1^(1/4) ~ 0.56.
    EXPECT_GT(below_tenth, 4500u);
}

} // namespace
} // namespace gps
