/**
 * @file
 * Tests for the differential-validation subsystem: clean runs agree
 * with the reference model under every paradigm, checking is zero-cost
 * and bit-exact when disabled, and deliberately seeded defects are
 * detected and reported with kernel/page context (golden-divergence
 * cases).
 */

#include <gtest/gtest.h>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "check/check.hh"
#include "check/differential.hh"

namespace gps
{
namespace
{

constexpr double smokeScale = 0.0625;

RunConfig
checkedConfig(ParadigmKind paradigm = ParadigmKind::Gps,
              std::size_t gpus = 2)
{
    RunConfig config;
    config.system.numGpus = gpus;
    config.paradigm = paradigm;
    config.scale = smokeScale;
    config.check.enabled = true;
    return config;
}

// --- Clean runs -------------------------------------------------------

TEST(Check, CleanGpsRunAgreesWithReference)
{
    const RunResult result = runWorkload("Jacobi", checkedConfig());
    ASSERT_NE(result.check, nullptr);
    const CheckReport& report = *result.check;
    EXPECT_TRUE(report.enabled);
    EXPECT_TRUE(report.ok()) << describe(report.findings.front());
    EXPECT_GT(report.refAccesses, 0u);
    EXPECT_GT(report.sinkEvents, 0u);
    EXPECT_GT(report.invariantChecks, 0u);
    EXPECT_GT(report.counterChecks, 0u);
}

TEST(Check, EveryParadigmPassesTheInvariantSuite)
{
    for (const ParadigmKind paradigm : allParadigms()) {
        const RunResult result =
            runWorkload("Jacobi", checkedConfig(paradigm));
        ASSERT_NE(result.check, nullptr) << to_string(paradigm);
        EXPECT_TRUE(result.check->ok())
            << to_string(paradigm) << ": "
            << describe(result.check->findings.front());
        EXPECT_GT(result.check->invariantChecks, 0u)
            << to_string(paradigm);
    }
}

TEST(Check, MidRunCadenceRunsMoreInvariantSweeps)
{
    RunConfig sparse = checkedConfig();
    RunConfig dense = checkedConfig();
    dense.check.everyAccesses = 1000;
    const RunResult a = runWorkload("Jacobi", sparse);
    const RunResult b = runWorkload("Jacobi", dense);
    ASSERT_NE(a.check, nullptr);
    ASSERT_NE(b.check, nullptr);
    EXPECT_TRUE(b.check->ok());
    EXPECT_GT(b.check->invariantChecks, a.check->invariantChecks);
}

TEST(Check, WqWriteHeavyWorkloadsAgree)
{
    // Diffusion and EQWP exercise the write-combining path hard (high
    // wq hit rates), which is where the reference model earns its keep.
    for (const char* app : {"Diffusion", "EQWP"}) {
        const RunResult result = runWorkload(app, checkedConfig());
        ASSERT_NE(result.check, nullptr) << app;
        EXPECT_TRUE(result.check->ok())
            << app << ": " << describe(result.check->findings.front());
    }
}

TEST(Check, SurvivesPageRetireFaults)
{
    RunConfig config = checkedConfig(ParadigmKind::Gps, 4);
    config.faultPlan.addSpec("page:retire@1ms:gpu0:8");
    config.faultPlan.seed = 7;
    config.faultPlan.sort();
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.check, nullptr);
    EXPECT_TRUE(result.check->ok())
        << describe(result.check->findings.front());
}

TEST(Check, SurvivesWqSaturationFaults)
{
    RunConfig config = checkedConfig(ParadigmKind::Gps, 4);
    config.faultPlan.addSpec("wq:saturate@0:*");
    config.faultPlan.sort();
    const RunResult result = runWorkload("Diffusion", config);
    ASSERT_NE(result.check, nullptr);
    EXPECT_TRUE(result.check->ok())
        << describe(result.check->findings.front());
}

// --- Disabled checking is bit-exact -----------------------------------

TEST(Check, DisabledRunsAreByteIdentical)
{
    RunConfig off = checkedConfig();
    off.check.enabled = false;
    RunConfig on = checkedConfig();

    const RunResult a = runWorkload("Jacobi", off);
    const RunResult b = runWorkload("Jacobi", on);

    EXPECT_EQ(a.check, nullptr);
    ASSERT_NE(b.check, nullptr);

    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.interconnectBytes, b.interconnectBytes);
    EXPECT_EQ(a.totals.accesses, b.totals.accesses);
    EXPECT_EQ(a.totals.pushedStoreBytes, b.totals.pushedStoreBytes);
    const auto& sa = a.stats.all();
    const auto& sb = b.stats.all();
    ASSERT_EQ(sa.size(), sb.size());
    for (const auto& [name, value] : sa) {
        ASSERT_TRUE(b.stats.has(name)) << name;
        EXPECT_EQ(value, b.stats.get(name)) << name;
    }
}

// --- Golden divergences: seeded defects must be caught ----------------

TEST(Check, SkippedStoreMutationIsDetectedWithGpuContext)
{
    // Mutation 1: the reference silently drops one weak store. Exactly
    // one of {sm_coalesced, inserts, coalesced} is then one short, so a
    // per-GPU counter comparison must fire at a kernel end.
    RunConfig config = checkedConfig();
    config.check.testMutation = 1;
    const RunResult result = runWorkload("Diffusion", config);
    ASSERT_NE(result.check, nullptr);
    const CheckReport& report = *result.check;
    ASSERT_FALSE(report.ok());
    ASSERT_FALSE(report.findings.empty());
    const CheckFinding& finding = report.findings.front();
    EXPECT_EQ(finding.invariant.rfind("counter:", 0), 0u)
        << describe(finding);
    EXPECT_NE(finding.gpu, invalidGpu) << describe(finding);
    EXPECT_FALSE(finding.phase.empty()) << describe(finding);
}

TEST(Check, DroppedUnsubscribeMutationIsDetectedWithPageContext)
{
    // Mutation 2: the reference drops one unsubscribe event, so its
    // subscriber mask for that page keeps a stale bit. The finalize
    // page-state sweep must report the page.
    RunConfig config = checkedConfig();
    config.check.testMutation = 2;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.check, nullptr);
    const CheckReport& report = *result.check;
    ASSERT_FALSE(report.ok());
    bool found_page_finding = false;
    for (const CheckFinding& finding : report.findings) {
        if (finding.invariant.rfind("page.", 0) == 0 && finding.hasVpn)
            found_page_finding = true;
    }
    EXPECT_TRUE(found_page_finding)
        << describe(report.findings.front());
}

TEST(Check, MutationsDoNotFireOutsideGps)
{
    // Non-GPS paradigms have no reference replay, so seeded mutations
    // must be inert there (the invariant suite still runs clean).
    RunConfig config = checkedConfig(ParadigmKind::Memcpy);
    config.check.testMutation = 1;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.check, nullptr);
    EXPECT_TRUE(result.check->ok());
    EXPECT_EQ(result.check->refAccesses, 0u);
}

// --- Differential sweep mode ------------------------------------------

TEST(Check, DifferentialSweepReportsFirstDivergenceWithContext)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({"Jacobi", checkedConfig(ParadigmKind::Memcpy),
                    "clean-memcpy"});
    jobs.push_back({"Diffusion", checkedConfig(ParadigmKind::Gps),
                    "mutated-gps"});

    CheckConfig check;
    check.testMutation = 1;
    const DifferentialResult result =
        runDifferentialCheck(jobs, check, 2);

    ASSERT_EQ(result.outcomes.size(), 2u);
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.divergences.size(), 1u);
    const DifferentialDivergence* div = result.first();
    ASSERT_NE(div, nullptr);
    EXPECT_EQ(div->jobIndex, 1u);
    EXPECT_EQ(div->label, "mutated-gps");
    EXPECT_EQ(div->finding.invariant.rfind("counter:", 0), 0u);
    EXPECT_NE(div->finding.gpu, invalidGpu);
}

TEST(Check, DifferentialSweepPassesOnCleanJobs)
{
    std::vector<SweepJob> jobs;
    for (const char* app : {"Jacobi", "CT"}) {
        RunConfig config = checkedConfig();
        config.check.enabled = false; // forced on by the sweep
        jobs.push_back({app, config, app});
    }
    const DifferentialResult result =
        runDifferentialCheck(jobs, CheckConfig{}, 2);
    EXPECT_TRUE(result.ok());
    for (const SweepOutcome& outcome : result.outcomes) {
        ASSERT_TRUE(outcome.ok());
        ASSERT_NE(outcome.result.check, nullptr);
        EXPECT_TRUE(outcome.result.check->ok());
    }
}

// --- Reporting --------------------------------------------------------

TEST(Check, ResultJsonCarriesTheCheckReport)
{
    const RunResult result = runWorkload("Jacobi", checkedConfig());
    const std::string json = resultToJson(result, false);
    EXPECT_NE(json.find("\"check\""), std::string::npos);
    EXPECT_NE(json.find("\"divergences\""), std::string::npos);
}

TEST(Check, DescribeRendersAllContext)
{
    CheckFinding finding;
    finding.invariant = "rwq.conservation";
    finding.detail = "inserts=3 drains=1 resident=1";
    finding.phase = "jacobi.sweep";
    finding.gpu = 2;
    finding.vpn = 42;
    finding.hasVpn = true;
    const std::string text = describe(finding);
    EXPECT_NE(text.find("rwq.conservation"), std::string::npos);
    EXPECT_NE(text.find("jacobi.sweep"), std::string::npos);
    EXPECT_NE(text.find("gpu 2"), std::string::npos);
    EXPECT_NE(text.find("page 42"), std::string::npos);
}

TEST(Check, FindingsAreCappedButCounted)
{
    CheckReport report;
    for (std::size_t i = 0; i < CheckReport::maxFindings + 10; ++i) {
        CheckFinding finding;
        finding.invariant = "test";
        addFinding(report, std::move(finding));
    }
    EXPECT_EQ(report.findings.size(), CheckReport::maxFindings);
    EXPECT_EQ(report.divergences, CheckReport::maxFindings + 10);
    EXPECT_FALSE(report.ok());
}

} // namespace
} // namespace gps
