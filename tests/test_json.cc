/**
 * @file
 * Unit tests for the JSON writer and result export.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "common/json.hh"

namespace gps
{
namespace
{

TEST(JsonWriter, EmptyObject)
{
    JsonWriter json;
    json.beginObject().endObject();
    EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriter, FieldsSeparateWithCommas)
{
    JsonWriter json;
    json.beginObject()
        .field("a", std::uint64_t(1))
        .field("b", 2.5)
        .field("c", std::string("x"))
        .field("d", true)
        .endObject();
    EXPECT_EQ(json.str(), R"({"a":1,"b":2.5,"c":"x","d":true})");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter json;
    json.beginObject();
    json.key("list").beginArray();
    json.value(std::uint64_t(1));
    json.value(std::uint64_t(2));
    json.beginObject().field("k", std::uint64_t(3)).endObject();
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.str(), R"({"list":[1,2,{"k":3}]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.beginArray().value(1.0 / 0.0).endArray();
    EXPECT_EQ(json.str(), "[null]");
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    // %.17g preserves every IEEE 754 double bit-for-bit; the old %.12g
    // silently corrupted large byte counters and tick totals.
    const double cases[] = {
        0.1,
        1.0 / 3.0,
        3.141592653589793,
        9007199254740993.0,    // 2^53 + 1 rounds to 2^53 + 2
        123456789012345680.0,  // a realistic extrapolated byte total
        1.7976931348623157e308,
        5e-324,
    };
    for (const double expected : cases) {
        JsonWriter json;
        json.beginArray().value(expected).endArray();
        const std::string text = json.str();
        const double parsed =
            std::strtod(text.c_str() + 1, nullptr); // skip '['
        EXPECT_EQ(parsed, expected) << text;
    }
}

TEST(JsonParser, ParsesScalarsAndContainers)
{
    std::string error;
    const auto doc = parseJson(
        R"({"n":-2.5e3,"s":"hi","t":true,"f":false,"z":null,)"
        R"("a":[1,2,3],"o":{"k":"v"}})",
        error);
    ASSERT_NE(doc, nullptr) << error;
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->number("n"), -2500.0);
    EXPECT_EQ(doc->string("s"), "hi");
    EXPECT_TRUE(doc->find("t")->asBool());
    EXPECT_FALSE(doc->find("f")->asBool());
    EXPECT_TRUE(doc->find("z")->isNull());
    ASSERT_TRUE(doc->find("a")->isArray());
    EXPECT_EQ(doc->find("a")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(doc->find("a")->items()[2].asNumber(), 3.0);
    EXPECT_EQ(doc->find("o")->string("k"), "v");
    // Typed fallbacks on missing/mistyped members.
    EXPECT_DOUBLE_EQ(doc->number("missing", -1.0), -1.0);
    EXPECT_EQ(doc->string("n", "fb"), "fb");
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParser, DecodesEscapes)
{
    std::string error;
    const auto doc =
        parseJson(R"(["a\"b\\c\/\n\t","\u0041\u00e9\u20ac"])", error);
    ASSERT_NE(doc, nullptr) << error;
    EXPECT_EQ(doc->items()[0].asString(), "a\"b\\c/\n\t");
    EXPECT_EQ(doc->items()[1].asString(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParser, RoundTripsTheWriter)
{
    JsonWriter w;
    w.beginObject();
    w.field("pi", 3.141592653589793);
    w.field("count", std::uint64_t{123456789});
    w.field("label", std::string("quote \" and \\ bs"));
    w.key("nested").beginArray().value(false).endArray();
    w.endObject();

    std::string error;
    const auto doc = parseJson(w.str(), error);
    ASSERT_NE(doc, nullptr) << error;
    EXPECT_DOUBLE_EQ(doc->number("pi"), 3.141592653589793);
    EXPECT_DOUBLE_EQ(doc->number("count"), 123456789.0);
    EXPECT_EQ(doc->string("label"), "quote \" and \\ bs");
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    for (const char* bad :
         {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01a",
          "\"unterminated", "{\"a\":1} trailing", "[1 2]",
          "{\"a\":\"\\u12zz\"}", "nan"}) {
        std::string error;
        EXPECT_EQ(parseJson(bad, error), nullptr) << bad;
        EXPECT_NE(error.find("at offset"), std::string::npos) << bad;
    }
}

TEST(ResultExport, ContainsHeadlineFields)
{
    RunConfig config;
    config.system.numGpus = 2;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Gps;
    const RunResult result = runWorkload("Jacobi", config);
    const std::string json = resultToJson(result);
    EXPECT_NE(json.find("\"workload\":\"Jacobi\""), std::string::npos);
    EXPECT_NE(json.find("\"paradigm\":\"GPS\""), std::string::npos);
    EXPECT_NE(json.find("\"num_gpus\":2"), std::string::npos);
    EXPECT_NE(json.find("\"total_time_ms\":"), std::string::npos);
    EXPECT_NE(json.find("\"subscriber_histogram\":["),
              std::string::npos);
    // Stats excluded by default.
    EXPECT_EQ(json.find("\"stats\":"), std::string::npos);
}

TEST(ResultExport, OptionalStatsSection)
{
    RunConfig config;
    config.system.numGpus = 2;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Memcpy;
    const RunResult result = runWorkload("Jacobi", config);
    const std::string json = resultToJson(result, true);
    EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
    EXPECT_NE(json.find("gpu0.l2.hits"), std::string::npos);
}

TEST(ResultExport, BalancedBraces)
{
    RunConfig config;
    config.system.numGpus = 2;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Gps;
    const std::string json =
        resultToJson(runWorkload("CT", config), true);
    std::int64_t depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace gps
