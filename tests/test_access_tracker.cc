/**
 * @file
 * Unit tests for the GPS access tracking unit.
 */

#include <gtest/gtest.h>

#include "core/access_tracker.hh"

namespace gps
{
namespace
{

TEST(AccessTracker, InactiveMarksAreIgnored)
{
    AccessTracker tracker(4);
    tracker.mark(0, 1);
    EXPECT_FALSE(tracker.touched(0, 1));
    EXPECT_EQ(tracker.marks(), 0u);
}

TEST(AccessTracker, ActiveMarksRecordPerGpu)
{
    AccessTracker tracker(4);
    tracker.start();
    tracker.mark(0, 1);
    tracker.mark(2, 1);
    tracker.mark(2, 5);
    EXPECT_TRUE(tracker.touched(0, 1));
    EXPECT_TRUE(tracker.touched(2, 1));
    EXPECT_FALSE(tracker.touched(1, 1));
    EXPECT_FALSE(tracker.touched(2, 7));
}

TEST(AccessTracker, TouchedMaskAggregates)
{
    AccessTracker tracker(4);
    tracker.start();
    tracker.mark(1, 9);
    tracker.mark(3, 9);
    EXPECT_EQ(tracker.touchedMask(9), gpuBit(1) | gpuBit(3));
    EXPECT_EQ(tracker.touchedMask(10), 0u);
}

TEST(AccessTracker, StopFreezesTheWindow)
{
    AccessTracker tracker(4);
    tracker.start();
    tracker.mark(0, 1);
    tracker.stop();
    tracker.mark(0, 2);
    EXPECT_TRUE(tracker.touched(0, 1));
    EXPECT_FALSE(tracker.touched(0, 2));
}

TEST(AccessTracker, ClearForgetsEverything)
{
    AccessTracker tracker(4);
    tracker.start();
    tracker.mark(0, 1);
    tracker.clear();
    EXPECT_FALSE(tracker.touched(0, 1));
}

TEST(AccessTracker, BitmapFootprintMatchesPaper)
{
    // Section 5.2: one bit per 64 KB page over 32 GB = 64 KB of DRAM.
    EXPECT_EQ(AccessTracker::bitmapBytes(32 * GiB, 64 * KiB), 64 * KiB);
    // 4 KB pages would need 16x more.
    EXPECT_EQ(AccessTracker::bitmapBytes(32 * GiB, 4 * KiB),
              16 * 64 * KiB);
}

TEST(AccessTracker, DuplicateMarksAreIdempotent)
{
    AccessTracker tracker(2);
    tracker.start();
    tracker.mark(0, 1);
    tracker.mark(0, 1);
    EXPECT_EQ(tracker.touchedMask(1), gpuBit(0));
    EXPECT_EQ(tracker.marks(), 2u); // bandwidth accounting still counts
}

} // namespace
} // namespace gps
