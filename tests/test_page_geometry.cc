/**
 * @file
 * Unit tests for page geometry arithmetic across the three evaluated
 * page sizes (4 KB / 64 KB / 2 MB).
 */

#include <gtest/gtest.h>

#include "mem/page.hh"

namespace gps
{
namespace
{

class PageGeometryParam
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    PageGeometry geo{GetParam()};
};

TEST_P(PageGeometryParam, ShiftMatchesBytes)
{
    EXPECT_EQ(std::uint64_t(1) << geo.shift(), geo.bytes());
}

TEST_P(PageGeometryParam, PageNumAndBaseRoundTrip)
{
    const Addr addr = 7 * geo.bytes() + 123;
    EXPECT_EQ(geo.pageNum(addr), 7u);
    EXPECT_EQ(geo.pageBase(7), 7 * geo.bytes());
    EXPECT_EQ(geo.pageOffset(addr), 123u);
}

TEST_P(PageGeometryParam, BoundaryAddresses)
{
    EXPECT_EQ(geo.pageNum(geo.bytes() - 1), 0u);
    EXPECT_EQ(geo.pageNum(geo.bytes()), 1u);
    EXPECT_EQ(geo.pageOffset(geo.bytes()), 0u);
}

TEST_P(PageGeometryParam, PagesSpannedCountsPartialPages)
{
    EXPECT_EQ(geo.pagesSpanned(0, 0), 0u);
    EXPECT_EQ(geo.pagesSpanned(0, 1), 1u);
    EXPECT_EQ(geo.pagesSpanned(0, geo.bytes()), 1u);
    EXPECT_EQ(geo.pagesSpanned(0, geo.bytes() + 1), 2u);
    // A one-byte range straddling nothing, starting mid-page.
    EXPECT_EQ(geo.pagesSpanned(geo.bytes() - 1, 2), 2u);
}

INSTANTIATE_TEST_SUITE_P(EvaluatedSizes, PageGeometryParam,
                         ::testing::Values(4 * KiB, 64 * KiB, 2 * MiB));

TEST(PageGeometry, DefaultIs64K)
{
    PageGeometry geo;
    EXPECT_EQ(geo.bytes(), 64 * KiB);
    EXPECT_EQ(geo.shift(), 16u);
}

TEST(PageGeometry, EqualityComparesBytes)
{
    EXPECT_TRUE(PageGeometry(4 * KiB) == PageGeometry(4 * KiB));
    EXPECT_FALSE(PageGeometry(4 * KiB) == PageGeometry(64 * KiB));
}

} // namespace
} // namespace gps
