/**
 * @file
 * Property tests for the memory-model obligations of Section 3.3: weak
 * stores may coalesce but must all become visible (drain) by the next
 * synchronization point; same-GPU same-line ordering is preserved by
 * point-to-point FIFO draining; sys-scoped stores are never coalesced
 * and collapse the page to a single coherent copy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/gps_paradigm.hh"

namespace gps
{
namespace
{

class MemoryModelTest : public ::testing::Test
{
  protected:
    MemoryModelTest()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        paradigm = std::make_unique<GpsParadigm>(*system);
        traffic = std::make_unique<TrafficMatrix>(4);
        region = &system->driver().mallocGps(4 * 64 * KiB, "gps", 0);
        paradigm->onSetupComplete();
    }

    void
    access(GpuId gpu, const MemAccess& a)
    {
        const PageNum vpn = system->geometry().pageNum(a.vaddr);
        const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
        paradigm->access(gpu, a, vpn, miss, counters, *traffic);
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<GpsParadigm> paradigm;
    std::unique_ptr<TrafficMatrix> traffic;
    const Region* region = nullptr;
    KernelCounters counters;
};

TEST_F(MemoryModelTest, EveryWeakStoreIsVisibleByEndOfGrid)
{
    // 1000 weak stores over 200 lines: whatever coalescing happened,
    // after the implicit release every written line has been forwarded
    // at least once (all-visible at the synchronization point).
    std::vector<Addr> lines;
    for (int i = 0; i < 200; ++i)
        lines.push_back(region->base + static_cast<Addr>(i) * 128);
    for (int rep = 0; rep < 5; ++rep) {
        for (const Addr line : lines)
            access(0, MemAccess::store(line));
    }
    paradigm->endKernel(0, counters, *traffic);
    // Each line drained exactly once per residency; every line drained.
    EXPECT_GE(counters.wqDrains, lines.size());
    EXPECT_EQ(paradigm->writeQueue(0).occupancy(), 0u);
}

TEST_F(MemoryModelTest, DelayedVisibilityNeverLosesStores)
{
    // Conservation: forwarded stores = inserts (each drained once);
    // coalesced + absorbed + inserted = all weak stores issued.
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        access(0, MemAccess::store(region->base +
                                   static_cast<Addr>(i % 700) * 128));
    }
    paradigm->endKernel(0, counters, *traffic);
    EXPECT_EQ(counters.stores, 0u); // counted by the runner, not here
    EXPECT_EQ(counters.wqInserts, counters.wqDrains);
    EXPECT_EQ(counters.wqInserts + counters.wqCoalesced +
                  counters.smCoalesced,
              static_cast<std::uint64_t>(n));
}

TEST_F(MemoryModelTest, SameLineStoresFromOneGpuDrainOnce)
{
    // Same-address same-GPU stores coalesce into one message: the last
    // write wins at every subscriber, which is exactly the same-address
    // ordering the model requires.
    access(0, MemAccess::store(region->base));
    for (int i = 1; i < 20; ++i) {
        access(0, MemAccess::store(region->base +
                                   static_cast<Addr>(i) * 128));
    }
    access(0, MemAccess::store(region->base + 8));
    paradigm->endKernel(0, counters, *traffic);
    EXPECT_EQ(counters.wqDrains, 20u);
}

TEST_F(MemoryModelTest, SysStoreIsNeverCoalesced)
{
    access(0, MemAccess::store(region->base));
    access(0, MemAccess::sysStore(region->base + 4));
    // The sys store did not merge into the buffered weak store; it
    // collapsed the page instead.
    EXPECT_EQ(counters.wqCoalesced, 0u);
    EXPECT_EQ(counters.sysCollapses, 1u);
}

TEST_F(MemoryModelTest, SysCollapseEstablishesSingleCoherentCopy)
{
    const PageNum vpn = system->geometry().pageNum(region->base);
    access(2, MemAccess::sysStore(region->base));
    const PageState& st = system->driver().state(vpn);
    EXPECT_EQ(maskCount(st.subscribers), 1u);
    EXPECT_TRUE(st.collapsed);
    // All future accesses to the page route to that single copy: a
    // store from another GPU is a remote store, not a replica write.
    const std::uint64_t pushed = counters.pushedStoreBytes;
    access(3, MemAccess::store(region->base));
    EXPECT_GT(counters.pushedStoreBytes, pushed);
    EXPECT_EQ(counters.wqInserts, 0u);
}

TEST_F(MemoryModelTest, CollapseIsPermanentAcrossIterations)
{
    const PageNum vpn = system->geometry().pageNum(region->base);
    access(0, MemAccess::sysStore(region->base));
    paradigm->trackingStart();
    KernelCounters tc;
    paradigm->trackingStop(tc);
    EXPECT_TRUE(system->driver().state(vpn).collapsed);
    EXPECT_FALSE(system->driver().state(vpn).gpsBitSet);
}

TEST_F(MemoryModelTest, ScopedButGpuLocalStoresStayWeak)
{
    // cta/gpu-scoped accesses never need inter-GPU visibility; they
    // follow the weak path (coalescable).
    MemAccess store = MemAccess::store(region->base);
    store.scope = Scope::Gpu;
    access(0, store);
    MemAccess store2 = MemAccess::store(region->base + 4);
    store2.scope = Scope::Cta;
    access(0, store2);
    EXPECT_EQ(counters.sysCollapses, 0u);
    EXPECT_EQ(counters.wqInserts + counters.smCoalesced, 2u);
}

TEST_F(MemoryModelTest, RacyWeakStoresFromTwoGpusBothPropagate)
{
    // Weak stores from different GPUs to the same line are racy: the
    // model allows any interleaving, but both updates must reach the
    // other's replica (no lost updates at the page level).
    access(0, MemAccess::store(region->base));
    access(1, MemAccess::store(region->base));
    paradigm->endKernel(0, counters, *traffic);
    paradigm->endKernel(1, counters, *traffic);
    EXPECT_GT(traffic->at(0, 1), 0u);
    EXPECT_GT(traffic->at(1, 0), 0u);
}

} // namespace
} // namespace gps
