/**
 * @file
 * Unit tests for the Unified Memory policy engine: first touch, fault
 * migration, hints, read-duplication and collapse-on-write.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "driver/um_engine.hh"

namespace gps
{
namespace
{

class UmEngineTest : public ::testing::Test
{
  protected:
    UmEngineTest()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        engine = std::make_unique<UmEngine>(system->driver());
        region = &system->driver().mallocManaged(4 * 64 * KiB, "um");
        vpn = system->geometry().pageNum(region->base);
    }

    UmDecision
    access(GpuId gpu, const MemAccess& a, bool hints = false)
    {
        return engine->access(gpu, a,
                              system->geometry().pageNum(a.vaddr),
                              hints, counters, *traffic());
    }

    TrafficMatrix*
    traffic()
    {
        if (!traffic_)
            traffic_ = std::make_unique<TrafficMatrix>(4);
        return traffic_.get();
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<UmEngine> engine;
    const Region* region = nullptr;
    PageNum vpn = 0;
    KernelCounters counters;
    std::unique_ptr<TrafficMatrix> traffic_;
};

TEST_F(UmEngineTest, FirstTouchPlacesLocallyWithOneFault)
{
    const UmDecision d = access(2, MemAccess::load(region->base));
    EXPECT_EQ(d.route, UmRoute::Local);
    EXPECT_EQ(system->driver().state(vpn).location, 2);
    EXPECT_EQ(counters.pageFaults, 1u);
}

TEST_F(UmEngineTest, LocalReaccessIsFree)
{
    access(2, MemAccess::load(region->base));
    const std::uint64_t faults = counters.pageFaults;
    const UmDecision d = access(2, MemAccess::store(region->base));
    EXPECT_EQ(d.route, UmRoute::Local);
    EXPECT_EQ(counters.pageFaults, faults);
}

TEST_F(UmEngineTest, RemoteTouchFaultsAndMigrates)
{
    access(0, MemAccess::store(region->base));
    const UmDecision d = access(1, MemAccess::load(region->base));
    EXPECT_EQ(d.route, UmRoute::Local);
    EXPECT_EQ(system->driver().state(vpn).location, 1);
    EXPECT_EQ(counters.pageFaults, 2u);
    EXPECT_EQ(counters.pageMigrations, 1u);
}

TEST_F(UmEngineTest, PingPongThrashesOnAlternatingWriters)
{
    access(0, MemAccess::store(region->base));
    for (int i = 0; i < 3; ++i) {
        access(1, MemAccess::store(region->base));
        access(0, MemAccess::store(region->base));
    }
    EXPECT_EQ(counters.pageMigrations, 6u);
}

TEST_F(UmEngineTest, HintsFirstTouchHonorsPreferredLocation)
{
    system->driver().advisePreferredLocation(region->base, 64 * KiB, 3);
    const UmDecision d = access(0, MemAccess::load(region->base), true);
    // The page lands on (and stays pinned to) the preferred GPU; the
    // non-preferred toucher reads it remotely.
    EXPECT_EQ(system->driver().state(vpn).location, 3);
    EXPECT_EQ(d.route, UmRoute::RemoteLoad);
    EXPECT_EQ(d.owner, 3);
}

TEST_F(UmEngineTest, AccessedByReadGoesRemoteWithoutFault)
{
    access(0, MemAccess::store(region->base), true);
    system->driver().adviseAccessedBy(region->base, 64 * KiB, 1);
    const std::uint64_t faults = counters.pageFaults;
    const UmDecision d = access(1, MemAccess::load(region->base), true);
    EXPECT_EQ(d.route, UmRoute::RemoteLoad);
    EXPECT_EQ(d.owner, 0);
    EXPECT_EQ(counters.pageFaults, faults);
    EXPECT_EQ(system->driver().state(vpn).location, 0);
}

TEST_F(UmEngineTest, AccessedByWriteGoesRemoteStore)
{
    access(0, MemAccess::store(region->base), true);
    system->driver().adviseAccessedBy(region->base, 64 * KiB, 1);
    const UmDecision d = access(1, MemAccess::store(region->base), true);
    EXPECT_EQ(d.route, UmRoute::RemoteStore);
}

TEST_F(UmEngineTest, AccessedByAtomicGoesRemoteAtomic)
{
    access(0, MemAccess::store(region->base), true);
    system->driver().adviseAccessedBy(region->base, 64 * KiB, 1);
    const UmDecision d =
        access(1, MemAccess::atomic(region->base), true);
    EXPECT_EQ(d.route, UmRoute::RemoteAtomic);
}

TEST_F(UmEngineTest, PreferredOwnerWritePullsPageHome)
{
    system->driver().advisePreferredLocation(region->base, 64 * KiB, 0);
    access(0, MemAccess::store(region->base), true);
    // Prefetch-style move away:
    KernelCounters scratch;
    TrafficMatrix t(4);
    system->driver().migratePage(vpn, 1, scratch, t);
    const UmDecision d = access(0, MemAccess::store(region->base), true);
    EXPECT_EQ(d.route, UmRoute::Local);
    EXPECT_EQ(system->driver().state(vpn).location, 0);
}

TEST_F(UmEngineTest, ReadMostlyDuplicatesForReaders)
{
    access(0, MemAccess::store(region->base));
    system->driver().adviseReadMostly(region->base, 64 * KiB);
    const UmDecision d = access(1, MemAccess::load(region->base));
    EXPECT_EQ(d.route, UmRoute::Local);
    const PageState& st = system->driver().state(vpn);
    EXPECT_TRUE(maskHas(st.readCopies, 1));
    EXPECT_EQ(st.location, 0);
    // Both GPUs now hold a frame.
    EXPECT_EQ(system->gpu(0).memory().framesInUse(), 1u);
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 1u);
}

TEST_F(UmEngineTest, WriteCollapsesReadDuplicates)
{
    access(0, MemAccess::store(region->base));
    system->driver().adviseReadMostly(region->base, 64 * KiB);
    access(1, MemAccess::load(region->base));
    access(2, MemAccess::load(region->base));
    const std::uint64_t shootdowns = counters.tlbShootdowns;
    access(0, MemAccess::store(region->base));
    const PageState& st = system->driver().state(vpn);
    EXPECT_EQ(st.readCopies, 0u);
    EXPECT_GT(counters.tlbShootdowns, shootdowns);
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 0u);
    EXPECT_EQ(system->gpu(2).memory().framesInUse(), 0u);
}

TEST_F(UmEngineTest, PrefetchMigratesRemotePagesWithoutFaults)
{
    access(0, MemAccess::store(region->base));
    access(0, MemAccess::store(region->base + 64 * KiB));
    const std::uint64_t faults = counters.pageFaults;
    KernelCounters pc;
    TrafficMatrix t(4);
    const Tick overhead =
        engine->prefetchRange(1, region->base, 2 * 64 * KiB, pc, t);
    EXPECT_GT(overhead, 0u);
    EXPECT_EQ(pc.pageFaults, 0u);
    EXPECT_EQ(pc.pageMigrations, 2u);
    EXPECT_EQ(counters.pageFaults, faults);
    EXPECT_EQ(system->driver().state(vpn).location, 1);
}

TEST_F(UmEngineTest, PrefetchOfUntouchedPagesEstablishesPlacement)
{
    KernelCounters pc;
    TrafficMatrix t(4);
    engine->prefetchRange(2, region->base, 64 * KiB, pc, t);
    EXPECT_EQ(system->driver().state(vpn).location, 2);
    EXPECT_EQ(pc.pageMigrations, 0u);
    EXPECT_EQ(t.total(), 0u);
}

} // namespace
} // namespace gps
