/**
 * @file
 * Unit tests for the GPS address translation unit (GPS-TLB + walks).
 */

#include <gtest/gtest.h>

#include "core/gps_translation_unit.hh"

namespace gps
{
namespace
{

class XlatTest : public ::testing::Test
{
  protected:
    XlatTest()
        : unit("xlat", GpsConfig{}, table)
    {
        table.addReplica(1, 0, 100);
        table.addReplica(1, 2, 200);
    }

    GpsPageTable table;
    GpsConfig config;
    GpsTranslationUnit unit;
    KernelCounters counters;
};

TEST_F(XlatTest, FirstTranslationMissesAndWalks)
{
    const GpsPte* pte = unit.translate(1, counters);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(counters.gpsTlbMisses, 1u);
    EXPECT_EQ(counters.gpsTlbHits, 0u);
    EXPECT_EQ(unit.walks(), 1u);
}

TEST_F(XlatTest, SecondTranslationHits)
{
    unit.translate(1, counters);
    unit.translate(1, counters);
    EXPECT_EQ(counters.gpsTlbHits, 1u);
    EXPECT_EQ(unit.walks(), 1u);
}

TEST_F(XlatTest, UnknownPageStillFillsTlbButReturnsNull)
{
    EXPECT_EQ(unit.translate(99, counters), nullptr);
    EXPECT_EQ(counters.gpsTlbMisses, 1u);
}

TEST_F(XlatTest, ReturnsAllSubscribers)
{
    const GpsPte* pte = unit.translate(1, counters);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->subscriberMask(), gpuBit(0) | gpuBit(2));
}

TEST_F(XlatTest, Table1GpsTlbShape)
{
    // 32 entries, 8-way per Table 1.
    EXPECT_EQ(unit.gpsTlb().entries(), 32u);
    EXPECT_EQ(unit.gpsTlb().ways(), 8u);
}

TEST_F(XlatTest, SmallWorkingSetReaches100PercentHitRate)
{
    // Section 7.4: the GPS-TLB reaches ~100% hit rate at 32 entries
    // because it only serves GPS-heap drain traffic.
    for (int pass = 0; pass < 10; ++pass) {
        for (PageNum vpn = 0; vpn < 16; ++vpn)
            unit.translate(vpn, counters);
    }
    EXPECT_GT(unit.gpsTlb().hitRate(), 0.85);
}

} // namespace
} // namespace gps
