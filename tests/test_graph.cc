/**
 * @file
 * Unit tests for the synthetic partitioned power-law graph generator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include <thread>

#include "apps/graph.hh"
#include "common/rng.hh"

namespace gps::apps
{
namespace
{

/**
 * The original per-vertex generator (push_back + per-row sort + direct
 * rng.zipf), kept verbatim as the reference the optimized flat-CSR
 * generator must reproduce byte for byte: figure outputs depend on the
 * generated graph, so any divergence is a silent result change.
 */
Graph
referenceGraph(const GraphParams& params)
{
    Graph graph;
    graph.numVertices = params.numVertices;
    graph.numParts = params.numParts;
    graph.rowPtr.resize(params.numVertices + 1, 0);
    graph.targets.reserve(params.numVertices * params.avgDegree);

    Rng rng(params.seed);
    for (std::uint64_t v = 0; v < params.numVertices; ++v) {
        graph.rowPtr[v] = graph.targets.size();
        const GpuId part = graph.owner(v);
        const std::uint64_t pfirst = graph.partFirst(part);
        const std::uint64_t pcount = graph.partEnd(part) - pfirst;
        const std::uint32_t degree =
            1 + static_cast<std::uint32_t>(
                    rng.below(2 * params.avgDegree - 1));
        for (std::uint32_t e = 0; e < degree; ++e) {
            std::uint64_t target;
            if (rng.chance(params.locality)) {
                target = pfirst + rng.below(pcount);
            } else {
                target = rng.zipf(params.numVertices, params.hubSkew);
            }
            graph.targets.push_back(static_cast<std::uint32_t>(target));
        }
        auto begin = graph.targets.begin() +
                     static_cast<std::ptrdiff_t>(graph.rowPtr[v]);
        std::sort(begin, graph.targets.end());
    }
    graph.rowPtr[params.numVertices] = graph.targets.size();
    return graph;
}

/** The original copy+sort+unique distinct-target collector. */
std::vector<std::uint32_t>
referenceDistinctTargetGroups(const Graph& graph, std::size_t part,
                              std::uint32_t vertices_per_group)
{
    const std::uint64_t first = graph.partFirst(part);
    const std::uint64_t end = graph.partEnd(part);
    std::vector<std::uint32_t> groups(
        graph.targets.begin() +
            static_cast<std::ptrdiff_t>(graph.rowPtr[first]),
        graph.targets.begin() +
            static_cast<std::ptrdiff_t>(graph.rowPtr[end]));
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()),
                 groups.end());
    for (auto& g : groups)
        g /= vertices_per_group;
    groups.erase(std::unique(groups.begin(), groups.end()),
                 groups.end());
    return groups;
}

GraphParams
smallParams()
{
    GraphParams params;
    params.numVertices = 4096;
    params.avgDegree = 4;
    params.numParts = 4;
    params.locality = 0.8;
    params.hubSkew = 0.75;
    params.seed = 99;
    return params;
}

TEST(Graph, RowPtrIsMonotonicAndComplete)
{
    const Graph graph = makePowerLawGraph(smallParams());
    ASSERT_EQ(graph.rowPtr.size(), graph.numVertices + 1);
    for (std::uint64_t v = 0; v < graph.numVertices; ++v)
        EXPECT_LE(graph.rowPtr[v], graph.rowPtr[v + 1]);
    EXPECT_EQ(graph.rowPtr.back(), graph.numEdges());
}

TEST(Graph, TargetsAreValidVertices)
{
    const Graph graph = makePowerLawGraph(smallParams());
    for (const std::uint32_t target : graph.targets)
        ASSERT_LT(target, graph.numVertices);
}

TEST(Graph, EveryVertexHasAtLeastOneEdge)
{
    const Graph graph = makePowerLawGraph(smallParams());
    for (std::uint64_t v = 0; v < graph.numVertices; ++v)
        EXPECT_GT(graph.rowPtr[v + 1], graph.rowPtr[v]);
}

TEST(Graph, AdjacencyIsSortedPerVertex)
{
    const Graph graph = makePowerLawGraph(smallParams());
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
        EXPECT_TRUE(std::is_sorted(
            graph.targets.begin() +
                static_cast<std::ptrdiff_t>(graph.rowPtr[v]),
            graph.targets.begin() +
                static_cast<std::ptrdiff_t>(graph.rowPtr[v + 1])));
    }
}

TEST(Graph, AverageDegreeNearRequested)
{
    const Graph graph = makePowerLawGraph(smallParams());
    const double avg = static_cast<double>(graph.numEdges()) /
                       static_cast<double>(graph.numVertices);
    EXPECT_NEAR(avg, 4.0, 0.5);
}

TEST(Graph, LocalityFractionApproximatelyHolds)
{
    const Graph graph = makePowerLawGraph(smallParams());
    std::uint64_t local = 0;
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
        const GpuId part = graph.owner(v);
        for (std::uint64_t e = graph.rowPtr[v]; e < graph.rowPtr[v + 1];
             ++e) {
            if (graph.owner(graph.targets[e]) == part)
                ++local;
        }
    }
    const double fraction = static_cast<double>(local) /
                            static_cast<double>(graph.numEdges());
    // Remote zipf edges occasionally land locally too, so the measured
    // fraction sits at or slightly above the requested locality.
    EXPECT_GT(fraction, 0.75);
    EXPECT_LT(fraction, 0.95);
}

TEST(Graph, PartitionsAreContiguousBlocks)
{
    const Graph graph = makePowerLawGraph(smallParams());
    EXPECT_EQ(graph.partFirst(0), 0u);
    EXPECT_EQ(graph.partEnd(3), graph.numVertices);
    EXPECT_EQ(graph.owner(0), 0);
    EXPECT_EQ(graph.owner(graph.numVertices - 1), 3);
    for (std::size_t p = 0; p + 1 < 4; ++p)
        EXPECT_EQ(graph.partEnd(p), graph.partFirst(p + 1));
}

TEST(Graph, DeterministicForFixedSeed)
{
    const Graph a = makePowerLawGraph(smallParams());
    const Graph b = makePowerLawGraph(smallParams());
    EXPECT_EQ(a.targets, b.targets);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
}

TEST(Graph, DistinctTargetsAreSortedUnique)
{
    const Graph graph = makePowerLawGraph(smallParams());
    const auto targets = distinctTargets(graph, 1);
    EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
    EXPECT_EQ(std::adjacent_find(targets.begin(), targets.end()),
              targets.end());
    EXPECT_FALSE(targets.empty());
}

TEST(Graph, DistinctTargetGroupsCollapseByGroupSize)
{
    const Graph graph = makePowerLawGraph(smallParams());
    const auto vertices = distinctTargets(graph, 0);
    const auto groups = distinctTargetGroups(graph, 0, 32);
    EXPECT_LE(groups.size(), vertices.size());
    for (const std::uint32_t g : groups)
        ASSERT_LT(static_cast<std::uint64_t>(g) * 32,
                  graph.numVertices);
}

TEST(Graph, DegreesStayWithinGeneratorBounds)
{
    const GraphParams params = smallParams();
    const Graph graph = makePowerLawGraph(params);
    const std::uint64_t max_degree = 2 * params.avgDegree - 1;
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
        const std::uint64_t degree =
            graph.rowPtr[v + 1] - graph.rowPtr[v];
        ASSERT_GE(degree, 1u);
        ASSERT_LE(degree, max_degree);
    }
    EXPECT_GE(graph.numEdges(), graph.numVertices);
    EXPECT_LE(graph.numEdges(), graph.numVertices * max_degree);
    EXPECT_EQ(graph.targets.size(), graph.numEdges());
}

TEST(Graph, MatchesReferenceGeneratorOnRandomizedParams)
{
    // The flat-CSR generator and the bitmap distinct-target collector
    // must agree with the original implementations on arbitrary
    // parameters — including uneven partition boundaries, where
    // owner(v) is not the inverse of partFirst/partEnd.
    Rng meta(2026);
    for (int c = 0; c < 12; ++c) {
        GraphParams params;
        params.numVertices = 1024 + meta.below(8192);
        params.avgDegree = 1 + static_cast<std::uint32_t>(meta.below(9));
        params.numParts = 1 + static_cast<std::size_t>(meta.below(7));
        params.locality = 0.05 * static_cast<double>(meta.below(20));
        params.hubSkew =
            0.1 + 0.08 * static_cast<double>(meta.below(10));
        params.seed = meta.next();

        const Graph got = makePowerLawGraph(params);
        const Graph want = referenceGraph(params);
        ASSERT_EQ(got.rowPtr, want.rowPtr) << "case " << c;
        ASSERT_EQ(got.targets, want.targets) << "case " << c;

        for (std::size_t p = 0; p < params.numParts; ++p) {
            ASSERT_EQ(distinctTargets(got, p),
                      referenceDistinctTargetGroups(want, p, 1))
                << "case " << c << " part " << p;
            ASSERT_EQ(distinctTargetGroups(got, p, 32),
                      referenceDistinctTargetGroups(want, p, 32))
                << "case " << c << " part " << p;
        }
    }
}

TEST(Graph, DeterministicUnderConcurrentGeneration)
{
    // Generation must not depend on how many threads run it (sweep
    // workers generate concurrently).
    const Graph serial = makePowerLawGraph(smallParams());
    std::vector<Graph> results(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < results.size(); ++t)
        threads.emplace_back([&results, t] {
            results[t] = makePowerLawGraph(smallParams());
        });
    for (std::thread& thread : threads)
        thread.join();
    for (const Graph& graph : results) {
        EXPECT_EQ(graph.rowPtr, serial.rowPtr);
        EXPECT_EQ(graph.targets, serial.targets);
    }
}

TEST(Graph, HubSkewConcentratesRemoteEdges)
{
    GraphParams params = smallParams();
    params.locality = 0.0; // all edges remote/zipf
    const Graph graph = makePowerLawGraph(params);
    std::uint64_t low = 0;
    for (const std::uint32_t t : graph.targets)
        low += t < graph.numVertices / 10 ? 1 : 0;
    // Zipf exponent 4: well over half of the draws land in the first
    // tenth of the (degree-sorted) id space.
    EXPECT_GT(static_cast<double>(low) /
                  static_cast<double>(graph.numEdges()),
              0.5);
}

} // namespace
} // namespace gps::apps
