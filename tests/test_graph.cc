/**
 * @file
 * Unit tests for the synthetic partitioned power-law graph generator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/graph.hh"

namespace gps::apps
{
namespace
{

GraphParams
smallParams()
{
    GraphParams params;
    params.numVertices = 4096;
    params.avgDegree = 4;
    params.numParts = 4;
    params.locality = 0.8;
    params.hubSkew = 0.75;
    params.seed = 99;
    return params;
}

TEST(Graph, RowPtrIsMonotonicAndComplete)
{
    const Graph graph = makePowerLawGraph(smallParams());
    ASSERT_EQ(graph.rowPtr.size(), graph.numVertices + 1);
    for (std::uint64_t v = 0; v < graph.numVertices; ++v)
        EXPECT_LE(graph.rowPtr[v], graph.rowPtr[v + 1]);
    EXPECT_EQ(graph.rowPtr.back(), graph.numEdges());
}

TEST(Graph, TargetsAreValidVertices)
{
    const Graph graph = makePowerLawGraph(smallParams());
    for (const std::uint32_t target : graph.targets)
        ASSERT_LT(target, graph.numVertices);
}

TEST(Graph, EveryVertexHasAtLeastOneEdge)
{
    const Graph graph = makePowerLawGraph(smallParams());
    for (std::uint64_t v = 0; v < graph.numVertices; ++v)
        EXPECT_GT(graph.rowPtr[v + 1], graph.rowPtr[v]);
}

TEST(Graph, AdjacencyIsSortedPerVertex)
{
    const Graph graph = makePowerLawGraph(smallParams());
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
        EXPECT_TRUE(std::is_sorted(
            graph.targets.begin() +
                static_cast<std::ptrdiff_t>(graph.rowPtr[v]),
            graph.targets.begin() +
                static_cast<std::ptrdiff_t>(graph.rowPtr[v + 1])));
    }
}

TEST(Graph, AverageDegreeNearRequested)
{
    const Graph graph = makePowerLawGraph(smallParams());
    const double avg = static_cast<double>(graph.numEdges()) /
                       static_cast<double>(graph.numVertices);
    EXPECT_NEAR(avg, 4.0, 0.5);
}

TEST(Graph, LocalityFractionApproximatelyHolds)
{
    const Graph graph = makePowerLawGraph(smallParams());
    std::uint64_t local = 0;
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
        const GpuId part = graph.owner(v);
        for (std::uint64_t e = graph.rowPtr[v]; e < graph.rowPtr[v + 1];
             ++e) {
            if (graph.owner(graph.targets[e]) == part)
                ++local;
        }
    }
    const double fraction = static_cast<double>(local) /
                            static_cast<double>(graph.numEdges());
    // Remote zipf edges occasionally land locally too, so the measured
    // fraction sits at or slightly above the requested locality.
    EXPECT_GT(fraction, 0.75);
    EXPECT_LT(fraction, 0.95);
}

TEST(Graph, PartitionsAreContiguousBlocks)
{
    const Graph graph = makePowerLawGraph(smallParams());
    EXPECT_EQ(graph.partFirst(0), 0u);
    EXPECT_EQ(graph.partEnd(3), graph.numVertices);
    EXPECT_EQ(graph.owner(0), 0);
    EXPECT_EQ(graph.owner(graph.numVertices - 1), 3);
    for (std::size_t p = 0; p + 1 < 4; ++p)
        EXPECT_EQ(graph.partEnd(p), graph.partFirst(p + 1));
}

TEST(Graph, DeterministicForFixedSeed)
{
    const Graph a = makePowerLawGraph(smallParams());
    const Graph b = makePowerLawGraph(smallParams());
    EXPECT_EQ(a.targets, b.targets);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
}

TEST(Graph, DistinctTargetsAreSortedUnique)
{
    const Graph graph = makePowerLawGraph(smallParams());
    const auto targets = distinctTargets(graph, 1);
    EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
    EXPECT_EQ(std::adjacent_find(targets.begin(), targets.end()),
              targets.end());
    EXPECT_FALSE(targets.empty());
}

TEST(Graph, DistinctTargetGroupsCollapseByGroupSize)
{
    const Graph graph = makePowerLawGraph(smallParams());
    const auto vertices = distinctTargets(graph, 0);
    const auto groups = distinctTargetGroups(graph, 0, 32);
    EXPECT_LE(groups.size(), vertices.size());
    for (const std::uint32_t g : groups)
        ASSERT_LT(static_cast<std::uint64_t>(g) * 32,
                  graph.numVertices);
}

TEST(Graph, HubSkewConcentratesRemoteEdges)
{
    GraphParams params = smallParams();
    params.locality = 0.0; // all edges remote/zipf
    const Graph graph = makePowerLawGraph(params);
    std::uint64_t low = 0;
    for (const std::uint32_t t : graph.targets)
        low += t < graph.numVertices / 10 ? 1 : 0;
    // Zipf exponent 4: well over half of the draws land in the first
    // tenth of the (degree-sorted) id space.
    EXPECT_GT(static_cast<double>(low) /
                  static_cast<double>(graph.numEdges()),
              0.5);
}

} // namespace
} // namespace gps::apps
