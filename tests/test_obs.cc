/**
 * @file
 * Tests for the observability layer: metric registry, sampler, timeline
 * recorder, JSON export, and the disabled-path byte-identity guarantee.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "obs/observability.hh"

namespace gps
{
namespace
{

/** Structural JSON validity: balanced nesting outside string literals. */
void
expectWellFormedJson(const std::string& text)
{
    std::int64_t depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0) << text.substr(0, 200);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(MetricRegistry, RegistersAndSnapshots)
{
    std::uint64_t count = 0;
    MetricRegistry reg;
    reg.counter("x.count", "events",
                [&count] { return static_cast<double>(count); });
    reg.gauge("x.rate", "ratio", [] { return 0.25; });
    EXPECT_EQ(reg.size(), 2u);

    count = 7;
    const std::vector<MetricValue> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "x.count");
    EXPECT_EQ(snap[0].kind, MetricKind::Counter);
    EXPECT_DOUBLE_EQ(snap[0].value, 7.0);
    EXPECT_EQ(snap[1].kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(snap[1].value, 0.25);

    ASSERT_NE(reg.find("x.rate"), nullptr);
    EXPECT_EQ(reg.find("x.rate")->unit, "ratio");
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Sampler, RespectsMinimumSpacing)
{
    std::uint64_t v = 0;
    MetricRegistry reg;
    reg.counter("v", "events", [&v] { return static_cast<double>(v); });
    Sampler sampler(reg, 10);
    sampler.poll(0);
    v = 1;
    sampler.poll(5); // too soon: dropped
    v = 2;
    sampler.poll(12);
    const std::vector<Tick> expect{0, 12};
    EXPECT_EQ(sampler.sampleTicks(), expect);
    ASSERT_EQ(sampler.columns().size(), 1u);
    const std::vector<double> series{0.0, 2.0};
    EXPECT_EQ(sampler.columns()[0], series);
}

TEST(Sampler, FinishRecordsOnceAtRunEnd)
{
    MetricRegistry reg;
    reg.counter("v", "events", [] { return 1.0; });
    Sampler sampler(reg, 10);
    sampler.poll(0);
    sampler.finish(0); // same tick: no duplicate
    EXPECT_EQ(sampler.sampleTicks().size(), 1u);
    sampler.finish(3); // before the period boundary, still recorded
    EXPECT_EQ(sampler.sampleTicks().size(), 2u);
}

TEST(Sampler, ZeroPeriodOnlyRecordsFinal)
{
    MetricRegistry reg;
    reg.counter("v", "events", [] { return 1.0; });
    Sampler sampler(reg, 0);
    sampler.poll(0);
    sampler.poll(100);
    EXPECT_TRUE(sampler.sampleTicks().empty());
    sampler.finish(200);
    EXPECT_EQ(sampler.sampleTicks().size(), 1u);
}

TEST(Sampler, StartRecordsOneBaselineSample)
{
    MetricRegistry reg;
    reg.counter("v", "events", [] { return 1.0; });
    Sampler sampler(reg, 0); // even with periodic sampling off
    sampler.start(5);
    sampler.start(5); // idempotent
    const std::vector<Tick> expect{5};
    EXPECT_EQ(sampler.sampleTicks(), expect);
    sampler.finish(200);
    EXPECT_EQ(sampler.sampleTicks().size(), 2u);
}


TEST(TimelineRecorder, RecordsAndBounds)
{
    TimelineRecorder rec(2);
    rec.nameTrack(0, "gpu0");
    rec.advanceTo(100);
    rec.complete(0, "k", "kernel", 100, 50, {{"accesses", 32.0}});
    rec.instantNow(TimelineRecorder::driverTid, "migrate", "driver");
    rec.instant(0, "dropped", "kernel", 160); // over the cap
    ASSERT_EQ(rec.events().size(), 2u);
    EXPECT_EQ(rec.dropped(), 1u);
    EXPECT_EQ(rec.events()[0].ph, 'X');
    EXPECT_EQ(rec.events()[0].dur, 50u);
    EXPECT_EQ(rec.events()[1].ph, 'i');
    EXPECT_EQ(rec.events()[1].ts, 100u);
}

TEST(TimelineRecorder, JsonIsWellFormedAndLabelsTracks)
{
    TimelineRecorder rec;
    rec.nameTrack(0, "gpu0");
    rec.complete(0, "phase \"a\"", "phase", 0, 10);
    const std::string json =
        timelineToJson(rec.events(), rec.trackNames(), rec.dropped());
    expectWellFormedJson(json);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"gpu0\""), std::string::npos);
    EXPECT_NE(json.find("\\\"a\\\""), std::string::npos);
}

RunConfig
obsConfig()
{
    RunConfig config;
    config.system.numGpus = 2;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Gps;
    return config;
}

TEST(Observability, MetricsRunsAlwaysHaveABaselineSample)
{
    // Even with --sample-every 0 the series brackets the run: one
    // sample at the start, one at the end.
    RunConfig config = obsConfig();
    config.obs.metrics = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    ASSERT_EQ(result.obs->sampleTicks.size(), 2u);
    EXPECT_LT(result.obs->sampleTicks.front(),
              result.obs->sampleTicks.back());
}

TEST(Observability, DisabledPathIsByteIdentical)
{
    const RunResult plain = runWorkload("Jacobi", obsConfig());
    RunConfig observed_config = obsConfig();
    observed_config.obs.metrics = true;
    observed_config.obs.timeline = true;
    observed_config.obs.profile = true;
    observed_config.obs.causal = true;
    observed_config.obs.sampleEvery = usToTicks(50.0);
    const RunResult observed = runWorkload("Jacobi", observed_config);

    EXPECT_EQ(plain.obs, nullptr);
    ASSERT_NE(observed.obs, nullptr);
    // Observation must not perturb the simulation: the full exported
    // result (counters, times, stats) is byte-identical either way.
    EXPECT_EQ(resultToJson(plain, true), resultToJson(observed, true));
}

TEST(Observability, MetricsMatchTheStatSet)
{
    RunConfig config = obsConfig();
    config.obs.metrics = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    EXPECT_TRUE(result.obs->hasMetrics);
    EXPECT_FALSE(result.obs->hasTimeline);
    EXPECT_FALSE(result.obs->finals.empty());

    // Spot-check that the registry reads the same counters exportStats
    // dumps, across all instrumented layers.
    for (const std::string name :
         {"gpu0.l2.hits", "gpu1.tlb.misses", "interconnect.total_bytes",
          "gpu0.remote_write_queue.drains", "driver.migrations",
          "gps.wq_hit_rate"}) {
        bool found = false;
        for (const MetricValue& m : result.obs->finals) {
            if (m.name != name)
                continue;
            found = true;
            EXPECT_DOUBLE_EQ(m.value, result.stats.get(name)) << name;
        }
        EXPECT_TRUE(found) << name;
    }
}

TEST(Observability, SamplingProducesMonotonicSeries)
{
    RunConfig config = obsConfig();
    config.obs.metrics = true;
    config.obs.sampleEvery = usToTicks(10.0);
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    const ObsReport& report = *result.obs;
    ASSERT_GE(report.sampleTicks.size(), 2u);
    ASSERT_EQ(report.seriesColumns.size(), report.finals.size());
    for (std::size_t s = 1; s < report.sampleTicks.size(); ++s)
        EXPECT_LT(report.sampleTicks[s - 1], report.sampleTicks[s]);
    for (std::size_t m = 0; m < report.finals.size(); ++m) {
        if (report.finals[m].kind != MetricKind::Counter)
            continue;
        const std::vector<double>& col = report.seriesColumns[m];
        ASSERT_EQ(col.size(), report.sampleTicks.size());
        for (std::size_t s = 1; s < col.size(); ++s)
            EXPECT_LE(col[s - 1], col[s]) << report.finals[m].name;
        EXPECT_DOUBLE_EQ(col.back(), report.finals[m].value);
    }
}

TEST(Observability, TimelineCoversKernelsAndTransfers)
{
    RunConfig config = obsConfig();
    config.obs.timeline = true;
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    EXPECT_TRUE(result.obs->hasTimeline);
    EXPECT_EQ(result.obs->timelineDropped, 0u);

    bool kernel = false, phase = false, link = false, drain = false;
    for (const TraceEvent& ev : result.obs->timeline) {
        kernel = kernel || ev.cat == "kernel";
        phase = phase || ev.cat == "phase";
        link = link || ev.cat == "link";
        drain = drain || ev.cat == "rwq";
    }
    EXPECT_TRUE(kernel);
    EXPECT_TRUE(phase);
    EXPECT_TRUE(link);
    EXPECT_TRUE(drain);
    EXPECT_EQ(result.obs->timelineTracks.count(0), 1u);
    EXPECT_EQ(
        result.obs->timelineTracks.count(TimelineRecorder::systemTid),
        1u);
}

TEST(Observability, ExportedJsonIsWellFormed)
{
    RunConfig config = obsConfig();
    config.obs.metrics = true;
    config.obs.timeline = true;
    config.obs.sampleEvery = usToTicks(25.0);
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);

    const std::string metrics = metricsToJson(*result.obs);
    expectWellFormedJson(metrics);
    EXPECT_NE(metrics.find("\"metrics\":["), std::string::npos);
    EXPECT_NE(metrics.find("\"samples\":"), std::string::npos);
    EXPECT_NE(metrics.find("gpu0.l2.hits"), std::string::npos);

    const std::string timeline = timelineToJson(*result.obs);
    expectWellFormedJson(timeline);
    EXPECT_NE(timeline.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(timeline.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
}

TEST(Observability, MetricsJsonCarriesTimelineDroppedCount)
{
    RunConfig config = obsConfig();
    config.obs.metrics = true;
    config.obs.timeline = true;
    config.obs.maxTimelineEvents = 1; // force overflow
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    EXPECT_GT(result.obs->timelineDropped, 0u);
    const std::string json = metricsToJson(*result.obs);
    EXPECT_NE(json.find("\"timeline_dropped\":"), std::string::npos);
    // The count itself, not just the key, must be exported.
    const std::size_t pos = json.find("\"timeline_dropped\":");
    EXPECT_NE(json[pos + std::string("\"timeline_dropped\":").size()],
              '0');
}

TEST(Observability, FaultEventsLandOnTheFaultTrack)
{
    RunConfig config = obsConfig();
    config.obs.timeline = true;
    config.obs.metrics = true;
    config.faultPlan.addSpec("link:degrade@0:0-1:0.5");
    config.faultPlan.sort();
    const RunResult result = runWorkload("Jacobi", config);
    ASSERT_NE(result.obs, nullptr);
    bool fault_event = false;
    for (const TraceEvent& ev : result.obs->timeline)
        fault_event = fault_event ||
                      (ev.cat == "fault" &&
                       ev.tid == TimelineRecorder::faultTid);
    EXPECT_TRUE(fault_event);
    bool injected = false;
    for (const MetricValue& m : result.obs->finals)
        if (m.name == "fault.injected") {
            injected = true;
            EXPECT_DOUBLE_EQ(m.value, 1.0);
        }
    EXPECT_TRUE(injected);
}

} // namespace
} // namespace gps
