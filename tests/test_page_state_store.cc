/**
 * @file
 * Unit tests for the dense per-region page-state storage that backs the
 * driver's replay hot path: slab grow/shrink, hint-cached lookups,
 * pointer stability of in-place state transitions (GPS subscriber masks
 * and collapse bits), and driver-level region lifecycle.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "driver/page_state_store.hh"

namespace gps
{
namespace
{

PageState
managedState()
{
    PageState st;
    st.kind = MemKind::Managed;
    return st;
}

TEST(PageStateStore, AddRangeThenFindEveryPage)
{
    PageStateStore store;
    store.addRange(100, 4, managedState());
    EXPECT_EQ(store.pages(), 4u);
    EXPECT_EQ(store.ranges(), 1u);
    for (PageNum vpn = 100; vpn < 104; ++vpn) {
        PageState* st = store.find(vpn);
        ASSERT_NE(st, nullptr) << "vpn " << vpn;
        EXPECT_EQ(st->kind, MemKind::Managed);
    }
    EXPECT_EQ(store.find(99), nullptr);
    EXPECT_EQ(store.find(104), nullptr);
}

TEST(PageStateStore, LookupsCrossSlabsAndGaps)
{
    PageStateStore store;
    PageState pinned; // default kind Pinned
    store.addRange(10, 2, pinned);
    store.addRange(20, 3, managedState());
    store.addRange(40, 1, pinned);
    EXPECT_EQ(store.ranges(), 3u);
    EXPECT_EQ(store.pages(), 6u);

    // Alternate between slabs so the hint keeps missing and the
    // binary-search fallback is exercised, including the gaps.
    EXPECT_EQ(store.at(10).kind, MemKind::Pinned);
    EXPECT_EQ(store.at(22).kind, MemKind::Managed);
    EXPECT_EQ(store.at(11).kind, MemKind::Pinned);
    EXPECT_EQ(store.at(40).kind, MemKind::Pinned);
    EXPECT_EQ(store.find(12), nullptr); // gap after first slab
    EXPECT_EQ(store.find(19), nullptr); // gap before second slab
    EXPECT_EQ(store.find(23), nullptr);
    EXPECT_EQ(store.find(39), nullptr);
    EXPECT_EQ(store.find(41), nullptr);
    EXPECT_EQ(store.find(0), nullptr); // before every slab
}

TEST(PageStateStore, RemoveMiddleRangeKeepsNeighbors)
{
    PageStateStore store;
    store.addRange(10, 2, managedState());
    store.addRange(20, 2, managedState());
    store.addRange(30, 2, managedState());
    store.removeRange(20);
    EXPECT_EQ(store.ranges(), 2u);
    EXPECT_EQ(store.pages(), 4u);
    EXPECT_EQ(store.find(20), nullptr);
    EXPECT_EQ(store.find(21), nullptr);
    ASSERT_NE(store.find(11), nullptr);
    ASSERT_NE(store.find(30), nullptr);
}

TEST(PageStateStore, StateMutationsPersistInPlace)
{
    PageStateStore store;
    store.addRange(50, 2, managedState());

    // GPS-style transitions mutate the record in place; a later lookup
    // must observe them through the same stable storage.
    PageState* st = store.find(51);
    ASSERT_NE(st, nullptr);
    st->subscribers = maskSet(maskSet(0, 0), 2);
    st->gpsBitSet = true;
    st->collapsed = false;

    PageState* again = store.find(51);
    EXPECT_EQ(again, st);
    EXPECT_EQ(again->subscribers, maskSet(maskSet(0, 0), 2));
    EXPECT_TRUE(again->gpsBitSet);

    // Collapse: subscriber mask drops, collapsed latches.
    again->subscribers = 0;
    again->collapsed = true;
    EXPECT_TRUE(store.at(51).collapsed);
    EXPECT_EQ(store.at(51).subscribers, 0u);
    EXPECT_FALSE(store.at(50).collapsed); // neighbor untouched
}

class DriverStateTest : public ::testing::Test
{
  protected:
    DriverStateTest()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
    }

    Driver& drv() { return system->driver(); }
    PageNum
    firstVpn(const Region& region)
    {
        return system->geometry().pageNum(region.base);
    }

    std::unique_ptr<MultiGpuSystem> system;
};

TEST_F(DriverStateTest, RegionsGrowAndShrinkTheStore)
{
    const Region& a = drv().malloc(128 * KiB, 0, "a");
    const Region& b = drv().mallocManaged(64 * KiB, "b");
    const Region& c = drv().mallocGps(64 * KiB, "c", 0);

    const PageNum va = firstVpn(a);
    const PageNum vb = firstVpn(b);
    const PageNum vc = firstVpn(c);
    EXPECT_TRUE(drv().hasState(va));
    EXPECT_TRUE(drv().hasState(va + 1)); // 128 KiB = 2 pages
    EXPECT_TRUE(drv().hasState(vb));
    EXPECT_TRUE(drv().hasState(vc));
    EXPECT_EQ(drv().state(vc).kind, MemKind::Gps);

    // Free the middle region: its pages vanish, neighbors survive.
    const Addr b_base = b.base;
    drv().free(b_base);
    EXPECT_FALSE(drv().hasState(vb));
    EXPECT_TRUE(drv().hasState(va));
    EXPECT_TRUE(drv().hasState(vc));
    EXPECT_EQ(drv().state(vc).kind, MemKind::Gps);
}

TEST_F(DriverStateTest, GuardGapsBetweenRegionsHaveNoState)
{
    const Region& a = drv().malloc(64 * KiB, 0, "a");
    const Region& b = drv().malloc(64 * KiB, 1, "b");
    const PageNum last_a =
        system->geometry().pageNum(a.base + a.size - 1);
    const PageNum first_b = firstVpn(b);
    ASSERT_GT(first_b, last_a + 1); // bump allocator leaves a guard page
    for (PageNum vpn = last_a + 1; vpn < first_b; ++vpn)
        EXPECT_FALSE(drv().hasState(vpn)) << "vpn " << vpn;
    EXPECT_EQ(drv().findState(last_a + 1), nullptr);
}

TEST_F(DriverStateTest, StatePointerStableAcrossHotPathLookups)
{
    const Region& r = drv().mallocGps(256 * KiB, "r", 0);
    const PageNum vpn = firstVpn(r) + 2;
    PageState* st = drv().findState(vpn);
    ASSERT_NE(st, nullptr);
    st->subscribers = maskAll(4);
    st->gpsBitSet = true;

    // Interleave lookups of other pages (the replay loop pattern) and
    // confirm the cached pointer target still reflects the mutations.
    for (PageNum other = firstVpn(r); other < firstVpn(r) + 4; ++other)
        ASSERT_NE(drv().findState(other), nullptr);
    EXPECT_EQ(drv().findState(vpn), st);
    EXPECT_EQ(drv().state(vpn).subscribers, maskAll(4));
    EXPECT_TRUE(drv().state(vpn).gpsBitSet);
}

TEST_F(DriverStateTest, RetirePathUnbackKeepsStateRecord)
{
    // Page retirement (fault path) unbacks replicas but the driver
    // record itself must survive until the region is freed.
    const Region& r = drv().mallocReplicated(64 * KiB, "rep", 0);
    const PageNum vpn = firstVpn(r);
    PageState& st = drv().state(vpn);
    ASSERT_NE(st.backed, 0u);
    const GpuMask before = st.backed;
    KernelCounters counters;
    drv().unbackPage(vpn, 1, &counters);
    EXPECT_TRUE(drv().hasState(vpn));
    EXPECT_EQ(drv().state(vpn).backed, maskClear(before, 1));
}

} // namespace
} // namespace gps
