/**
 * @file
 * Parameterized property tests over all eight bundled workloads: every
 * generated access falls inside an allocated region, every GPU gets a
 * kernel, generation is deterministic, and the declared hints reference
 * allocated memory.
 */

#include <gtest/gtest.h>

#include <map>

#include "api/system.hh"
#include "apps/workload.hh"
#include "paradigm/paradigm.hh"

namespace gps
{
namespace
{

constexpr double testScale = 0.0625;

class WorkloadFixture : public ::testing::TestWithParam<std::string>
{
  protected:
    WorkloadFixture()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        paradigm = makeParadigm(ParadigmKind::Memcpy, *system);
        ctx = std::make_unique<WorkloadContext>(*system, *paradigm);
        workload = makeWorkload(GetParam());
        workload->setScale(testScale);
        workload->setup(*ctx);
    }

    bool
    inAllocatedRegion(Addr addr) const
    {
        return system->addressSpace().regionOf(addr) != nullptr;
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<Paradigm> paradigm;
    std::unique_ptr<WorkloadContext> ctx;
    std::unique_ptr<Workload> workload;
};

TEST_P(WorkloadFixture, DeclaresIdentityStrings)
{
    EXPECT_EQ(workload->name(), GetParam());
    EXPECT_FALSE(workload->description().empty());
    EXPECT_FALSE(workload->commPattern().empty());
    EXPECT_GE(workload->effectiveIterations(), 2u);
}

TEST_P(WorkloadFixture, SetupAllocatesSharedAndUsuallyPrivateRegions)
{
    bool has_shared = false;
    for (const auto& [base, region] :
         system->addressSpace().regions()) {
        if (region.kind != MemKind::Pinned)
            has_shared = true;
    }
    EXPECT_TRUE(has_shared);
    EXPECT_GT(system->addressSpace().bytesAllocated(), 0u);
}

TEST_P(WorkloadFixture, EveryGpuGetsAKernelEachPhase)
{
    std::vector<Phase> phases = workload->iteration(0, *ctx);
    ASSERT_FALSE(phases.empty());
    for (Phase& phase : phases) {
        std::map<GpuId, int> kernels;
        for (const KernelLaunch& kernel : phase.kernels)
            ++kernels[kernel.gpu];
        EXPECT_EQ(kernels.size(), 4u) << phase.name;
        for (const auto& [gpu, count] : kernels)
            EXPECT_EQ(count, 1) << phase.name;
    }
}

TEST_P(WorkloadFixture, AllAccessesFallInAllocatedRegions)
{
    std::vector<Phase> phases = workload->iteration(0, *ctx);
    std::uint64_t accesses = 0;
    for (Phase& phase : phases) {
        for (KernelLaunch& kernel : phase.kernels) {
            MemAccess access;
            while (kernel.stream->next(access)) {
                ++accesses;
                ASSERT_TRUE(inAllocatedRegion(access.vaddr))
                    << phase.name << " addr " << access.vaddr;
                ASSERT_TRUE(
                    inAllocatedRegion(access.vaddr + access.size - 1))
                    << phase.name;
            }
        }
    }
    EXPECT_GT(accesses, 0u);
}

TEST_P(WorkloadFixture, StreamsAreDeterministicAcrossCalls)
{
    std::vector<Phase> a = workload->iteration(1, *ctx);
    std::vector<Phase> b = workload->iteration(1, *ctx);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].kernels.size(), b[p].kernels.size());
        for (std::size_t k = 0; k < a[p].kernels.size(); ++k) {
            MemAccess x, y;
            // Compare a prefix of both streams access by access.
            for (int i = 0; i < 5000; ++i) {
                const bool more_a = a[p].kernels[k].stream->next(x);
                const bool more_b = b[p].kernels[k].stream->next(y);
                ASSERT_EQ(more_a, more_b);
                if (!more_a)
                    break;
                ASSERT_EQ(x.vaddr, y.vaddr);
                ASSERT_EQ(x.type, y.type);
            }
        }
    }
}

TEST_P(WorkloadFixture, KernelsDeclareComputeWork)
{
    std::vector<Phase> phases = workload->iteration(0, *ctx);
    for (const Phase& phase : phases) {
        for (const KernelLaunch& kernel : phase.kernels)
            EXPECT_GT(kernel.computeInstrs, 0u) << phase.name;
    }
}

TEST_P(WorkloadFixture, HintRangesReferenceAllocatedMemory)
{
    std::vector<Phase> phases = workload->iteration(0, *ctx);
    for (const Phase& phase : phases) {
        for (const PrefetchRange& range : phase.prefetches) {
            EXPECT_LT(range.gpu, 4);
            EXPECT_TRUE(inAllocatedRegion(range.base));
            EXPECT_TRUE(inAllocatedRegion(range.base + range.len - 1));
        }
        for (const BroadcastRange& range : phase.barrierBroadcasts) {
            EXPECT_LT(range.src, 4);
            EXPECT_TRUE(inAllocatedRegion(range.base));
            EXPECT_TRUE(inAllocatedRegion(range.base + range.len - 1));
        }
    }
}

TEST_P(WorkloadFixture, UmHintsApplyWithoutError)
{
    workload->applyUmHints(*ctx);
    // At least one page must have a preferred location after hints
    // (every bundled app partitions its shared data).
    bool any_preferred = false;
    for (const auto& [base, region] :
         system->addressSpace().regions()) {
        system->driver().forEachPage(region, [&](PageNum vpn) {
            if (system->driver().state(vpn).preferredLocation !=
                invalidGpu)
                any_preferred = true;
        });
    }
    EXPECT_TRUE(any_preferred);
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadFixture,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto& info) { return info.param; });

TEST(WorkloadRegistry, ListsTheTable2Suite)
{
    const auto names = workloadNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names.front(), "Jacobi");
    EXPECT_EQ(names.back(), "HIT");
}

TEST(WorkloadRegistry, UnknownNameThrows)
{
    EXPECT_THROW(makeWorkload("NoSuchApp"), FatalError);
}

} // namespace
} // namespace gps
