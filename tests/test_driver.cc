/**
 * @file
 * Unit tests for the driver: allocation kinds, backing, peer mappings,
 * migration with shootdowns, and hints.
 */

#include <gtest/gtest.h>

#include "api/system.hh"

namespace gps
{
namespace
{

class DriverTest : public ::testing::Test
{
  protected:
    DriverTest()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
    }

    Driver& drv() { return system->driver(); }
    PageNum
    firstVpn(const Region& region)
    {
        return system->geometry().pageNum(region.base);
    }

    std::unique_ptr<MultiGpuSystem> system;
};

TEST_F(DriverTest, PinnedAllocBacksHomeAndPeerMapsEveryone)
{
    const Region& r = drv().malloc(64 * KiB, 1, "buf");
    const PageNum vpn = firstVpn(r);
    const PageState& st = drv().state(vpn);
    EXPECT_EQ(st.kind, MemKind::Pinned);
    EXPECT_EQ(st.location, 1);
    EXPECT_EQ(st.backed, gpuBit(1));
    EXPECT_EQ(st.mapped, maskAll(4));
    for (GpuId g = 0; g < 4; ++g) {
        const Pte* pte = drv().pageTable(g).lookup(vpn);
        ASSERT_NE(pte, nullptr);
        EXPECT_EQ(pte->location, 1);
    }
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 1u);
}

TEST_F(DriverTest, ManagedAllocStaysUnbacked)
{
    const Region& r = drv().mallocManaged(64 * KiB, "um");
    const PageState& st = drv().state(firstVpn(r));
    EXPECT_EQ(st.kind, MemKind::Managed);
    EXPECT_EQ(st.location, invalidGpu);
    EXPECT_EQ(st.backed, 0u);
}

TEST_F(DriverTest, GpsAllocBacksHomeAsSoleSubscriber)
{
    const Region& r = drv().mallocGps(64 * KiB, "gps", 2);
    const PageState& st = drv().state(firstVpn(r));
    EXPECT_EQ(st.kind, MemKind::Gps);
    EXPECT_EQ(st.subscribers, gpuBit(2));
    EXPECT_EQ(st.location, 2);
    EXPECT_EQ(system->gpu(2).memory().framesInUse(), 1u);
}

TEST_F(DriverTest, ReplicatedAllocBacksEveryGpu)
{
    const Region& r = drv().mallocReplicated(2 * 64 * KiB, "rep", 0);
    const PageState& st = drv().state(firstVpn(r));
    EXPECT_EQ(st.backed, maskAll(4));
    for (GpuId g = 0; g < 4; ++g)
        EXPECT_EQ(system->gpu(g).memory().framesInUse(), 2u);
}

TEST_F(DriverTest, FreeReleasesFramesAndMappings)
{
    const Region& r = drv().mallocReplicated(64 * KiB, "rep", 0);
    const Addr base = r.base;
    const PageNum vpn = firstVpn(r);
    drv().free(base);
    for (GpuId g = 0; g < 4; ++g) {
        EXPECT_EQ(system->gpu(g).memory().framesInUse(), 0u);
        EXPECT_EQ(drv().pageTable(g).lookup(vpn), nullptr);
    }
    EXPECT_FALSE(drv().hasState(vpn));
}

TEST_F(DriverTest, MigrateMovesFrameAndLocation)
{
    const Region& r = drv().mallocManaged(64 * KiB, "um");
    const PageNum vpn = firstVpn(r);
    ASSERT_TRUE(drv().backPage(vpn, 0));
    KernelCounters counters;
    TrafficMatrix traffic(4);
    drv().migratePage(vpn, 3, counters, traffic);
    const PageState& st = drv().state(vpn);
    EXPECT_EQ(st.location, 3);
    EXPECT_EQ(st.backed, gpuBit(3));
    EXPECT_EQ(system->gpu(0).memory().framesInUse(), 0u);
    EXPECT_EQ(system->gpu(3).memory().framesInUse(), 1u);
    EXPECT_EQ(counters.pageMigrations, 1u);
    EXPECT_EQ(counters.migrationBytes, 64 * KiB);
    EXPECT_EQ(traffic.at(0, 3), 64 * KiB +
                                    system->topology().spec().headerBytes);
}

TEST_F(DriverTest, MigrateToSelfIsNoop)
{
    const Region& r = drv().mallocManaged(64 * KiB, "um");
    const PageNum vpn = firstVpn(r);
    ASSERT_TRUE(drv().backPage(vpn, 0));
    KernelCounters counters;
    TrafficMatrix traffic(4);
    drv().migratePage(vpn, 0, counters, traffic);
    EXPECT_EQ(counters.pageMigrations, 0u);
    EXPECT_EQ(traffic.total(), 0u);
}

TEST_F(DriverTest, MigrateShootsDownCachedTranslations)
{
    const Region& r = drv().mallocManaged(64 * KiB, "um");
    const PageNum vpn = firstVpn(r);
    ASSERT_TRUE(drv().backPage(vpn, 0));
    KernelCounters scratch;
    system->gpu(0).tlbAccess(vpn, scratch); // cache the translation
    KernelCounters counters;
    TrafficMatrix traffic(4);
    drv().migratePage(vpn, 1, counters, traffic);
    EXPECT_EQ(counters.tlbShootdowns, 1u);
    EXPECT_FALSE(system->gpu(0).tlb().contains(vpn));
}

TEST_F(DriverTest, MigrateInvalidatesSourceL2)
{
    const Region& r = drv().mallocManaged(64 * KiB, "um");
    const PageNum vpn = firstVpn(r);
    ASSERT_TRUE(drv().backPage(vpn, 0));
    KernelCounters scratch;
    system->gpu(0).l2Path(r.base, false, scratch);
    ASSERT_TRUE(system->gpu(0).l2().contains(r.base));
    KernelCounters counters;
    TrafficMatrix traffic(4);
    drv().migratePage(vpn, 1, counters, traffic);
    EXPECT_FALSE(system->gpu(0).l2().contains(r.base));
}

TEST_F(DriverTest, UnbackReleasesFrameAndMapping)
{
    const Region& r = drv().mallocReplicated(64 * KiB, "rep", 0);
    const PageNum vpn = firstVpn(r);
    drv().unbackPage(vpn, 2, nullptr);
    EXPECT_FALSE(maskHas(drv().state(vpn).backed, 2));
    EXPECT_EQ(system->gpu(2).memory().framesInUse(), 0u);
    EXPECT_EQ(drv().pageTable(2).lookup(vpn), nullptr);
}

TEST_F(DriverTest, HintsLandOnPageState)
{
    const Region& r = drv().mallocManaged(2 * 64 * KiB, "um");
    drv().advisePreferredLocation(r.base, r.size, 2);
    drv().adviseAccessedBy(r.base, 64 * KiB, 1);
    drv().adviseReadMostly(r.base + 64 * KiB, 64 * KiB);
    const PageState& p0 = drv().state(firstVpn(r));
    const PageState& p1 = drv().state(firstVpn(r) + 1);
    EXPECT_EQ(p0.preferredLocation, 2);
    EXPECT_TRUE(maskHas(p0.accessedBy, 1));
    EXPECT_FALSE(p0.readMostly);
    EXPECT_TRUE(p1.readMostly);
    EXPECT_FALSE(maskHas(p1.accessedBy, 1));
}

TEST_F(DriverTest, BackPageFailsWhenMemoryExhausted)
{
    SystemConfig tiny;
    tiny.numGpus = 2;
    tiny.gpu.globalMemoryBytes = 2 * 64 * KiB; // two frames per GPU
    MultiGpuSystem small(tiny);
    Driver& drv = small.driver();
    const Region& a = drv.malloc(2 * 64 * KiB, 0, "fill");
    (void)a;
    const Region& b = drv.mallocManaged(64 * KiB, "um");
    EXPECT_FALSE(
        drv.backPage(small.geometry().pageNum(b.base), 0));
}

} // namespace
} // namespace gps
