/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace gps
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue queue;
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_FALSE(queue.serviceOne());
}

TEST(EventQueue, AdvancesTimeToEventTimestamp)
{
    EventQueue queue;
    queue.schedule(100, "ev", [] {});
    EXPECT_TRUE(queue.serviceOne());
    EXPECT_EQ(queue.now(), 100u);
}

TEST(EventQueue, ExecutesInTimestampOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, "c", [&] { order.push_back(3); });
    queue.schedule(10, "a", [&] { order.push_back(1); });
    queue.schedule(20, "b", [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, "first", [&] { order.push_back(1); });
    queue.schedule(5, "second", [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, BarrierPriorityRunsAfterCompletions)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, "barrier", [&] { order.push_back(99); },
                   barrierPriority);
    queue.schedule(5, "kernel", [&] { order.push_back(1); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 99}));
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue queue;
    queue.schedule(50, "seed", [&] { queue.scheduleIn(25, "rel", [] {}); });
    queue.run();
    EXPECT_EQ(queue.now(), 75u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, "a", [&] {
        ++fired;
        queue.schedule(2, "b", [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.executed(), 2u);
}

TEST(EventQueue, RunHonorsTickLimit)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, "early", [&] { ++fired; });
    queue.schedule(100, "late", [&] { ++fired; });
    queue.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue queue;
    queue.schedule(10, "ev", [] {});
    queue.reset();
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_FALSE(queue.serviceOne());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue queue;
    queue.schedule(100, "ev", [] {});
    queue.run();
    EXPECT_DEATH(queue.schedule(50, "past", [] {}), "past");
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    EventQueue queue;
    queue.schedule(10, "seed", [&] { queue.scheduleIn(0, "now", [] {}); });
    queue.run();
    EXPECT_EQ(queue.now(), 10u);
    EXPECT_EQ(queue.executed(), 2u);
}

TEST(EventQueue, ExecutedCountsAllServicedEvents)
{
    EventQueue queue;
    for (Tick t = 1; t <= 10; ++t)
        queue.schedule(t, "ev", [] {});
    queue.run();
    EXPECT_EQ(queue.executed(), 10u);
}

} // namespace
} // namespace gps
