/**
 * @file
 * Tests for the parallel sweep runner: input-order outcomes, per-job
 * error capture, byte-identical determinism across worker counts, and
 * configKey discrimination between configs that must not share a
 * memoized result.
 */

#include <gtest/gtest.h>

#include "api/result_export.hh"
#include "api/sweep.hh"
#include "common/logging.hh"
#include "obs/observability.hh"

namespace gps
{
namespace
{

/** Small, fast config: every test run finishes in milliseconds. */
RunConfig
smallConfig(ParadigmKind paradigm, std::size_t gpus = 2)
{
    RunConfig config;
    config.system.numGpus = gpus;
    config.paradigm = paradigm;
    config.scale = 0.02;
    return config;
}

TEST(Sweep, OutcomesArriveInInputOrder)
{
    std::vector<SweepJob> jobs = {
        {"Jacobi", smallConfig(ParadigmKind::Memcpy), "a"},
        {"Jacobi", smallConfig(ParadigmKind::Gps), "b"},
        {"HIT", smallConfig(ParadigmKind::Um), "c"},
    };
    const std::vector<SweepOutcome> out = runSweep(jobs, 4);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].label, "a");
    EXPECT_EQ(out[1].label, "b");
    EXPECT_EQ(out[2].label, "c");
    for (const SweepOutcome& o : out) {
        ASSERT_TRUE(o.ok());
        EXPECT_GT(o.result.totals.accesses, 0u);
        EXPECT_GE(o.wallSeconds, 0.0);
    }
}

TEST(Sweep, ParallelRunsMatchSerialByteForByte)
{
    std::vector<SweepJob> jobs;
    for (const ParadigmKind paradigm :
         {ParadigmKind::Um, ParadigmKind::Rdl, ParadigmKind::Memcpy,
          ParadigmKind::Gps}) {
        jobs.push_back({"Jacobi", smallConfig(paradigm), ""});
        jobs.push_back({"HIT", smallConfig(paradigm, 4), ""});
    }
    const std::vector<SweepOutcome> serial = runSweep(jobs, 1);
    const std::vector<SweepOutcome> parallel = runSweep(jobs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok());
        ASSERT_TRUE(parallel[i].ok());
        EXPECT_EQ(resultToJson(serial[i].result, true),
                  resultToJson(parallel[i].result, true))
            << "job " << i;
    }
}

TEST(Sweep, ProfileHistogramsAreDeterministicAcrossJobCounts)
{
    // Log2 histograms merge elementwise, so a profiled grid must export
    // bit-identical buckets and percentiles whether the sweep runs
    // serially or fanned across workers.
    std::vector<SweepJob> jobs;
    for (const std::size_t gpus : {2u, 4u}) {
        RunConfig config = smallConfig(ParadigmKind::Gps, gpus);
        config.obs.profile = true;
        jobs.push_back({"Jacobi", config, ""});
        jobs.push_back({"HIT", config, ""});
    }
    const std::vector<SweepOutcome> serial = runSweep(jobs, 1);
    const std::vector<SweepOutcome> parallel = runSweep(jobs, 3);
    ASSERT_EQ(serial.size(), parallel.size());

    LogHistogram serial_merged, parallel_merged;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok());
        ASSERT_TRUE(parallel[i].ok());
        ASSERT_NE(serial[i].result.obs, nullptr);
        ASSERT_NE(parallel[i].result.obs, nullptr);
        // Each job's full profile export is byte-identical...
        EXPECT_EQ(profileToJson(*serial[i].result.obs),
                  profileToJson(*parallel[i].result.obs))
            << "job " << i;
        // ...and so is the cross-job histogram reduction.
        for (const NamedHistogram& h :
             serial[i].result.obs->profile.histograms)
            serial_merged.merge(h.hist);
        for (const NamedHistogram& h :
             parallel[i].result.obs->profile.histograms)
            parallel_merged.merge(h.hist);
    }
    EXPECT_GT(serial_merged.count(), 0u);
    EXPECT_EQ(serial_merged.buckets(), parallel_merged.buckets());
    EXPECT_DOUBLE_EQ(serial_merged.percentile(0.5),
                     parallel_merged.percentile(0.5));
    EXPECT_DOUBLE_EQ(serial_merged.percentile(0.99),
                     parallel_merged.percentile(0.99));
}

TEST(Sweep, FailedJobCarriesErrorAndOthersStillRun)
{
    std::vector<SweepJob> jobs = {
        {"Jacobi", smallConfig(ParadigmKind::Memcpy), "good"},
        {"NoSuchWorkload", smallConfig(ParadigmKind::Memcpy), "bad"},
        {"HIT", smallConfig(ParadigmKind::Gps), "also good"},
    };
    const std::vector<SweepOutcome> out = runSweep(jobs, 2);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[0].ok());
    EXPECT_FALSE(out[1].ok());
    EXPECT_TRUE(out[2].ok());
    EXPECT_GT(out[2].result.totals.accesses, 0u);
    ASSERT_NE(out[1].error, nullptr);
    try {
        std::rethrow_exception(out[1].error);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("NoSuchWorkload"),
                  std::string::npos);
    }
}

TEST(Sweep, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(defaultSweepJobs(), 1u);
}

TEST(Sweep, ConfigKeySeparatesDistinctRuns)
{
    const RunConfig base = smallConfig(ParadigmKind::Gps);
    EXPECT_EQ(configKey("Jacobi", base), configKey("Jacobi", base));

    // Every field that can change a result must change the key.
    EXPECT_NE(configKey("Jacobi", base), configKey("HIT", base));

    RunConfig other = base;
    other.paradigm = ParadigmKind::Um;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.scale = 0.04;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.system.numGpus = 4;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.system.interconnect = InterconnectKind::NvLink3;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.system.gps.wqEntries /= 2;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.system.gps.smCoalescerEnabled =
        !other.system.gps.smCoalescerEnabled;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.system.pageBytes *= 2;
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));

    other = base;
    other.faultPlan.addSpec("link:down@0:0-1");
    EXPECT_NE(configKey("Jacobi", base), configKey("Jacobi", other));
}

} // namespace
} // namespace gps
