/**
 * @file
 * Unit tests for the access-stream generators (vector, callback,
 * concat, group/burst, replay).
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/app_common.hh"
#include "trace/kernel_trace.hh"

namespace gps
{
namespace
{

std::vector<MemAccess>
drain(AccessStream& stream)
{
    std::vector<MemAccess> out;
    MemAccess access;
    while (stream.next(access))
        out.push_back(access);
    return out;
}

TEST(VectorStream, EmitsInOrderThenEnds)
{
    VectorStream stream({MemAccess::load(1), MemAccess::store(2)});
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(accesses[0].vaddr, 1u);
    EXPECT_EQ(accesses[1].vaddr, 2u);
}

TEST(CallbackStream, DrivesFromClosure)
{
    int remaining = 3;
    CallbackStream stream([&](MemAccess& out) {
        if (remaining == 0)
            return false;
        out = MemAccess::load(static_cast<Addr>(remaining--));
        return true;
    });
    EXPECT_EQ(drain(stream).size(), 3u);
}

TEST(ConcatStream, ChainsPartsInOrder)
{
    std::vector<std::unique_ptr<AccessStream>> parts;
    parts.push_back(std::make_unique<VectorStream>(
        std::vector<MemAccess>{MemAccess::load(1)}));
    parts.push_back(std::make_unique<VectorStream>(
        std::vector<MemAccess>{}));
    parts.push_back(std::make_unique<VectorStream>(
        std::vector<MemAccess>{MemAccess::load(2), MemAccess::load(3)}));
    ConcatStream stream(std::move(parts));
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 3u);
    EXPECT_EQ(accesses[0].vaddr, 1u);
    EXPECT_EQ(accesses[2].vaddr, 3u);
}

TEST(GroupStream, InterleavesBurstsRoundRobin)
{
    apps::Group group;
    group.bursts = {
        apps::Burst{0, 2, 128, AccessType::Load, 128, Scope::Weak},
        apps::Burst{1000, 2, 128, AccessType::Store, 128, Scope::Weak},
    };
    apps::GroupStream stream({group});
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 4u);
    EXPECT_EQ(accesses[0].vaddr, 0u);
    EXPECT_EQ(accesses[1].vaddr, 1000u);
    EXPECT_EQ(accesses[2].vaddr, 128u);
    EXPECT_EQ(accesses[3].vaddr, 1128u);
    EXPECT_TRUE(accesses[1].isStore());
}

TEST(GroupStream, UnevenBurstsDrainCompletely)
{
    apps::Group group;
    group.bursts = {
        apps::Burst{0, 1, 128, AccessType::Load, 128, Scope::Weak},
        apps::Burst{1000, 3, 128, AccessType::Store, 128, Scope::Weak},
    };
    apps::GroupStream stream({group});
    EXPECT_EQ(drain(stream).size(), 4u);
}

TEST(GroupStream, GroupsRunSequentially)
{
    apps::Group first;
    first.bursts = {
        apps::Burst{0, 2, 128, AccessType::Store, 128, Scope::Weak}};
    apps::Group second;
    second.bursts = {
        apps::Burst{0, 2, 128, AccessType::Store, 128, Scope::Weak}};
    apps::GroupStream stream({first, second});
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 4u);
    // The second group revisits the same lines (a reuse distance of 2,
    // which is how multi-pass sweeps express WQ-coalescible stores).
    EXPECT_EQ(accesses[0].vaddr, accesses[2].vaddr);
}

TEST(GroupStream, NegativeStrideWalksBackwards)
{
    apps::Group group;
    group.bursts = {
        apps::Burst{256, 3, -128, AccessType::Load, 128, Scope::Weak}};
    apps::GroupStream stream({group});
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 3u);
    EXPECT_EQ(accesses[0].vaddr, 256u);
    EXPECT_EQ(accesses[1].vaddr, 128u);
    EXPECT_EQ(accesses[2].vaddr, 0u);
}

TEST(ReplayStream, FullReplayMatchesBacking)
{
    std::vector<MemAccess> backing{MemAccess::load(1),
                                   MemAccess::atomic(2)};
    apps::ReplayStream stream(&backing);
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_TRUE(accesses[1].isAtomic());
}

TEST(ReplayStream, CircularSliceWrapsAround)
{
    std::vector<MemAccess> backing;
    for (Addr a = 0; a < 10; ++a)
        backing.push_back(MemAccess::load(a));
    apps::ReplayStream stream(&backing, 8, 4);
    const auto accesses = drain(stream);
    ASSERT_EQ(accesses.size(), 4u);
    EXPECT_EQ(accesses[0].vaddr, 8u);
    EXPECT_EQ(accesses[1].vaddr, 9u);
    EXPECT_EQ(accesses[2].vaddr, 0u);
    EXPECT_EQ(accesses[3].vaddr, 1u);
}

TEST(ReplayStream, CountIsCappedAtBackingSize)
{
    std::vector<MemAccess> backing{MemAccess::load(1)};
    apps::ReplayStream stream(&backing, 0, 100);
    EXPECT_EQ(drain(stream).size(), 1u);
}

TEST(ReplayStream, EmptyBackingEndsImmediately)
{
    std::vector<MemAccess> backing;
    apps::ReplayStream stream(&backing, 0, 5);
    MemAccess access;
    EXPECT_FALSE(stream.next(access));
}

TEST(TiledStores, ReuseDistanceEqualsTileSize)
{
    std::vector<apps::Group> groups;
    apps::appendTiledStores(groups, 0, 0, 8, {4}, 2);
    apps::GroupStream stream(std::move(groups));
    const auto accesses = drain(stream);
    // 8 lines x 2 passes.
    ASSERT_EQ(accesses.size(), 16u);
    // First tile: lines 0..3 stored, then re-stored.
    EXPECT_EQ(accesses[0].vaddr, accesses[4].vaddr);
    EXPECT_EQ(accesses[3].vaddr, accesses[7].vaddr);
    // Second tile follows.
    EXPECT_EQ(accesses[8].vaddr, 4u * 128u);
}

TEST(TiledStores, PartialTailTileIsCovered)
{
    std::vector<apps::Group> groups;
    apps::appendTiledStores(groups, 0, 0, 10, {4}, 1);
    apps::GroupStream stream(std::move(groups));
    EXPECT_EQ(drain(stream).size(), 10u);
}

/** Drain via nextBatch with an odd chunk size (exercises boundaries). */
std::vector<MemAccess>
drainBatched(AccessStream& stream, std::size_t chunk)
{
    std::vector<MemAccess> out;
    std::vector<MemAccess> buf(chunk);
    std::size_t n;
    while ((n = stream.nextBatch(buf.data(), chunk)) > 0)
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(n));
    return out;
}

void
expectSameAccesses(const std::vector<MemAccess>& a,
                   const std::vector<MemAccess>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].vaddr, b[i].vaddr) << "access " << i;
        ASSERT_EQ(a[i].size, b[i].size) << "access " << i;
        ASSERT_EQ(a[i].type, b[i].type) << "access " << i;
        ASSERT_EQ(a[i].scope, b[i].scope) << "access " << i;
    }
}

std::vector<apps::Group>
mixedGroups()
{
    using apps::Burst;
    using apps::Group;
    std::vector<Group> groups;
    // Single-burst group (batched fast path), odd count.
    groups.push_back(Group{{Burst{0, 13, 128, AccessType::Load, 128,
                                  Scope::Weak}}});
    // Interleaved group (per-access path), uneven bursts.
    groups.push_back(Group{{
        Burst{10000, 5, 128, AccessType::Load, 128, Scope::Weak},
        Burst{20000, 9, 128, AccessType::Store, 32, Scope::Weak},
    }});
    // Another single-burst group, negative stride.
    groups.push_back(Group{{Burst{90000, 6, -128, AccessType::Store,
                                  128, Scope::Sys}}});
    return groups;
}

TEST(GroupStream, BatchedPullMatchesPerAccessPull)
{
    for (const std::size_t chunk : {1u, 7u, 64u}) {
        apps::GroupStream per_access(mixedGroups());
        apps::GroupStream batched(mixedGroups());
        expectSameAccesses(drainBatched(batched, chunk),
                           drain(per_access));
    }
}

TEST(ReplayStream, BatchedPullMatchesPerAccessPull)
{
    std::vector<MemAccess> backing;
    for (Addr a = 0; a < 57; ++a)
        backing.push_back(a % 3 == 0 ? MemAccess::atomic(a)
                                     : MemAccess::load(a));
    // Wrapping slices, including multiple laps (count capped at size).
    const struct
    {
        std::size_t start, count;
    } slices[] = {{0, 57}, {50, 20}, {56, 57}, {12, 1}, {3, 0}};
    for (const auto& s : slices) {
        for (const std::size_t chunk : {1u, 8u, 100u}) {
            apps::ReplayStream per_access(&backing, s.start, s.count);
            apps::ReplayStream batched(&backing, s.start, s.count);
            expectSameAccesses(drainBatched(batched, chunk),
                               drain(per_access));
        }
    }
}

TEST(Slab1D, OwnerAgreesWithPartitionRanges)
{
    // The closed-form owner must land every line inside [first(g),
    // end(g)) for every slab shape, including empty partitions
    // (more GPUs than lines) and uneven boundaries.
    for (const std::uint64_t total : {1u, 3u, 7u, 64u, 100u, 1023u}) {
        for (const std::size_t gpus : {1u, 2u, 3u, 4u, 5u, 7u, 16u}) {
            const apps::Slab1D slab{total, gpus};
            for (std::uint64_t line = 0; line < total; ++line) {
                const GpuId g = slab.owner(line);
                ASSERT_LT(static_cast<std::size_t>(g), gpus);
                ASSERT_GE(line, slab.first(g))
                    << total << " lines / " << gpus << " gpus";
                ASSERT_LT(line, slab.end(g))
                    << total << " lines / " << gpus << " gpus";
            }
            // And the ranges map back: every line of every partition
            // is owned by that partition.
            for (std::size_t g = 0; g < gpus; ++g) {
                const GpuId gpu = static_cast<GpuId>(g);
                for (std::uint64_t line = slab.first(gpu);
                     line < slab.end(gpu); ++line)
                    ASSERT_EQ(slab.owner(line), gpu);
            }
        }
    }
}

TEST(Slab1D, OwnerClampsPastTheEnd)
{
    const apps::Slab1D slab{10, 4};
    EXPECT_EQ(slab.owner(10), 3);
    EXPECT_EQ(slab.owner(1000), 3);
}

TEST(MemAccessHelpers, ClassifyCorrectly)
{
    EXPECT_TRUE(MemAccess::load(0).isLoad());
    EXPECT_FALSE(MemAccess::load(0).isWrite());
    EXPECT_TRUE(MemAccess::store(0).isWrite());
    EXPECT_TRUE(MemAccess::atomic(0).isWrite());
    EXPECT_TRUE(MemAccess::atomic(0).isAtomic());
    EXPECT_EQ(MemAccess::sysStore(0).scope, Scope::Sys);
}

} // namespace
} // namespace gps
