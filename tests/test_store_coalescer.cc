/**
 * @file
 * Unit tests for the SM-level store coalescer.
 */

#include <gtest/gtest.h>

#include "gpu/store_coalescer.hh"

namespace gps
{
namespace
{

TEST(StoreCoalescer, FirstStoreForwards)
{
    StoreCoalescer coalescer("c", 4, 128);
    EXPECT_FALSE(coalescer.absorb(0x1000));
    EXPECT_EQ(coalescer.forwarded(), 1u);
}

TEST(StoreCoalescer, SameLineAbsorbs)
{
    StoreCoalescer coalescer("c", 4, 128);
    coalescer.absorb(0x1000);
    EXPECT_TRUE(coalescer.absorb(0x1004));
    EXPECT_TRUE(coalescer.absorb(0x107C));
    EXPECT_EQ(coalescer.absorbed(), 2u);
    EXPECT_EQ(coalescer.forwarded(), 1u);
}

TEST(StoreCoalescer, DifferentLinesForward)
{
    StoreCoalescer coalescer("c", 4, 128);
    coalescer.absorb(0);
    EXPECT_FALSE(coalescer.absorb(128));
    EXPECT_FALSE(coalescer.absorb(256));
}

TEST(StoreCoalescer, DepthBoundsRecencyWindow)
{
    StoreCoalescer coalescer("c", 2, 128);
    coalescer.absorb(0);
    coalescer.absorb(128);
    coalescer.absorb(256); // pushes line 0 out of the window
    EXPECT_FALSE(coalescer.absorb(0));
    EXPECT_TRUE(coalescer.absorb(256));
}

TEST(StoreCoalescer, ResetForgetsWindow)
{
    StoreCoalescer coalescer("c", 4, 128);
    coalescer.absorb(0);
    coalescer.reset();
    EXPECT_FALSE(coalescer.absorb(0));
}

TEST(StoreCoalescer, SequentialLineSweepNeverAbsorbs)
{
    // The Jacobi property: one store per line, no temporal revisits —
    // everything forwards (which is why the WQ then sees 0% hits).
    StoreCoalescer coalescer("c", 8, 128);
    for (Addr a = 0; a < 128 * 100; a += 128)
        EXPECT_FALSE(coalescer.absorb(a));
    EXPECT_EQ(coalescer.absorbed(), 0u);
}

} // namespace
} // namespace gps
