/**
 * @file
 * Unit tests for the per-GPU model and its analytic timing formula.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hh"

namespace gps
{
namespace
{

class GpuModelTest : public ::testing::Test
{
  protected:
    GpuModelTest()
        : gpu(0, GpuConfig{}, PageGeometry(64 * KiB)),
          topo("ic", 4, InterconnectKind::Pcie3),
          infinite("inf", 4, InterconnectKind::Infinite)
    {}

    GpuModel gpu;
    Topology topo;
    Topology infinite;
};

TEST_F(GpuModelTest, L2PathCountsMissAndFillBytes)
{
    KernelCounters c;
    gpu.l2Path(0x1000, false, c);
    EXPECT_EQ(c.l2Misses, 1u);
    EXPECT_EQ(c.dramBytes, 128u);
    gpu.l2Path(0x1000, false, c);
    EXPECT_EQ(c.l2Hits, 1u);
    EXPECT_EQ(c.dramBytes, 128u);
}

TEST_F(GpuModelTest, TlbAccessFillsOnMiss)
{
    KernelCounters c;
    EXPECT_TRUE(gpu.tlbAccess(42, c));
    EXPECT_FALSE(gpu.tlbAccess(42, c));
    EXPECT_EQ(c.tlbMisses, 1u);
}

TEST_F(GpuModelTest, ComputeBoundKernelScalesWithInstructions)
{
    KernelCounters c;
    c.computeInstrs = 1'000'000'000;
    const Tick t1 = gpu.kernelTime(c, topo);
    c.computeInstrs = 2'000'000'000;
    const Tick t2 = gpu.kernelTime(c, topo);
    EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0,
                0.01);
}

TEST_F(GpuModelTest, DramBoundKernelMatchesBandwidth)
{
    KernelCounters c;
    c.dramBytes = 900'000'000; // 1 second at 900 GB/s... scaled: 1 ms
    const Tick t = gpu.kernelTime(c, topo);
    EXPECT_NEAR(ticksToMs(t), 1.0, 0.01);
}

TEST_F(GpuModelTest, OverlappableTermsComposeAsMax)
{
    KernelCounters compute_only;
    compute_only.computeInstrs = 1'000'000'000;
    KernelCounters dram_only;
    dram_only.dramBytes = 90'000'000;
    KernelCounters both;
    both.computeInstrs = compute_only.computeInstrs;
    both.dramBytes = dram_only.dramBytes;
    const Tick t_both = gpu.kernelTime(both, topo);
    const Tick t_max = std::max(gpu.kernelTime(compute_only, topo),
                                gpu.kernelTime(dram_only, topo));
    EXPECT_EQ(t_both, t_max);
}

TEST_F(GpuModelTest, RemoteLoadsExtendTheKernel)
{
    KernelCounters c;
    c.dramBytes = 9'000'000;
    const Tick base = gpu.kernelTime(c, topo);
    c.remoteLoads = 10'000;
    EXPECT_GT(gpu.kernelTime(c, topo), base);
}

TEST_F(GpuModelTest, RemoteAtomicsStallHarderThanLoads)
{
    KernelCounters loads;
    loads.remoteLoads = 10'000;
    KernelCounters atomics;
    atomics.remoteAtomics = 10'000;
    EXPECT_GT(gpu.kernelTime(atomics, topo),
              gpu.kernelTime(loads, topo));
}

TEST_F(GpuModelTest, InfiniteBandwidthElidesRemoteStalls)
{
    KernelCounters c;
    c.remoteLoads = 10'000;
    c.remoteAtomics = 10'000;
    EXPECT_EQ(gpu.kernelTime(c, infinite), 0u);
}

TEST_F(GpuModelTest, PageFaultsSerializeInBatches)
{
    KernelCounters c;
    c.pageFaults = 1;
    const Tick one = gpu.kernelTime(c, topo);
    EXPECT_EQ(one, gpu.faultTiming().faultLatency);
    c.pageFaults = gpu.faultTiming().faultConcurrency;
    EXPECT_EQ(gpu.kernelTime(c, topo), one);
    c.pageFaults = gpu.faultTiming().faultConcurrency + 1;
    EXPECT_EQ(gpu.kernelTime(c, topo), 2 * one);
}

TEST_F(GpuModelTest, ShootdownsAddFixedCost)
{
    KernelCounters c;
    c.tlbShootdowns = 3;
    EXPECT_EQ(gpu.kernelTime(c, topo),
              3 * gpu.faultTiming().shootdownLatency);
}

TEST_F(GpuModelTest, TlbMissesAddWalkTime)
{
    KernelCounters c;
    c.tlbMisses = 100'000;
    EXPECT_GT(gpu.kernelTime(c, topo), 0u);
}

TEST(GpuConfig, Table1Defaults)
{
    const GpuConfig config;
    EXPECT_EQ(config.numSms, 80u);
    EXPECT_EQ(config.cudaCoresPerSm, 64u);
    EXPECT_EQ(config.cacheLineBytes, 128u);
    EXPECT_EQ(config.l2CacheBytes, 6 * MiB);
    EXPECT_EQ(config.globalMemoryBytes, 16 * GiB);
    EXPECT_EQ(config.warpSize, 32u);
    EXPECT_EQ(config.maxThreadsPerSm, 2048u);
    EXPECT_EQ(config.maxThreadsPerCta, 1024u);
    EXPECT_EQ(config.virtualAddressBits, 49u);
    EXPECT_EQ(config.physicalAddressBits, 47u);
}

} // namespace
} // namespace gps
