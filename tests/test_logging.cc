/**
 * @file
 * Tests for structured logging: text/JSON line rendering, escaping,
 * the global format switch, and thread-safety of concurrent emitters.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace gps
{
namespace
{

/** Process-global capture target for the detail::setLogSink hook. */
std::mutex capturedMutex;
std::vector<std::string> captured;

void
captureLine(const std::string& line)
{
    const std::lock_guard<std::mutex> lock(capturedMutex);
    captured.push_back(line);
}

/** RAII: route log lines into `captured`, restore defaults on exit. */
class LogCapture
{
  public:
    LogCapture()
    {
        {
            const std::lock_guard<std::mutex> lock(capturedMutex);
            captured.clear();
        }
        detail::setLogSink(&captureLine);
    }
    ~LogCapture()
    {
        detail::setLogSink(nullptr);
        setLogFormat(LogFormat::Text);
    }
};

TEST(Logging, FormatsTextAndJsonLines)
{
    EXPECT_EQ(detail::formatLogLine("warn", "queue full",
                                    LogFormat::Text),
              "warn: queue full");
    EXPECT_EQ(detail::formatLogLine("warn", "queue full",
                                    LogFormat::Json),
              "{\"level\":\"warn\",\"msg\":\"queue full\"}");
}

TEST(Logging, JsonEscapesControlAndQuoteCharacters)
{
    const std::string line = detail::formatLogLine(
        "info", "path \"a\\b\"\nnext", LogFormat::Json);
    EXPECT_EQ(line, "{\"level\":\"info\",\"msg\":"
                    "\"path \\\"a\\\\b\\\"\\nnext\"}");
}

TEST(Logging, FormatSwitchChangesEmittedLines)
{
    LogCapture capture;
    gps_warn("plain ", 42);
    setLogFormat(LogFormat::Json);
    gps_warn("structured ", 42);

    const std::lock_guard<std::mutex> lock(capturedMutex);
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0], "warn: plain 42");
    EXPECT_EQ(captured[1],
              "{\"level\":\"warn\",\"msg\":\"structured 42\"}");
}

TEST(Logging, VerboseGateStillAppliesToInform)
{
    LogCapture capture;
    setVerbose(false);
    gps_inform("hidden");
    setVerbose(true);
    gps_inform("shown");

    const std::lock_guard<std::mutex> lock(capturedMutex);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "info: shown");
}

TEST(Logging, ConcurrentEmittersNeverTearLines)
{
    LogCapture capture;
    setLogFormat(LogFormat::Json);
    constexpr int threads = 8;
    constexpr int lines = 200;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([t] {
            for (int i = 0; i < lines; ++i)
                gps_warn("worker ", t, " line ", i);
        });
    for (std::thread& th : pool)
        th.join();

    const std::lock_guard<std::mutex> lock(capturedMutex);
    ASSERT_EQ(captured.size(),
              static_cast<std::size_t>(threads) * lines);
    for (const std::string& line : captured) {
        EXPECT_EQ(line.rfind("{\"level\":\"warn\",\"msg\":\"worker ", 0),
                  0u)
            << line;
        EXPECT_EQ(line.back(), '}') << line;
    }
}

} // namespace
} // namespace gps
