/**
 * @file
 * Unit tests for the MultiGpuSystem facade, the logging primitives and
 * the WorkloadContext allocation routing.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "apps/workload.hh"
#include "common/logging.hh"
#include "paradigm/paradigm.hh"

namespace gps
{
namespace
{

TEST(MultiGpuSystem, BuildsTable1SystemByDefault)
{
    SystemConfig config;
    MultiGpuSystem system(config);
    EXPECT_EQ(system.numGpus(), 4u);
    EXPECT_EQ(system.geometry().bytes(), 64 * KiB);
    EXPECT_EQ(system.topology().spec().kind, InterconnectKind::Pcie3);
    for (GpuId g = 0; g < 4; ++g) {
        EXPECT_EQ(system.gpu(g).id(), g);
        EXPECT_EQ(system.gpu(g).l2().capacityBytes(), 6 * MiB);
    }
}

TEST(MultiGpuSystem, ConfigDumpCarriesTable1Rows)
{
    SystemConfig config;
    MultiGpuSystem system(config);
    const std::string dump = system.configDump().render();
    EXPECT_NE(dump.find("GPU Parameters"), std::string::npos);
    EXPECT_NE(dump.find("GPS Structures"), std::string::npos);
    EXPECT_NE(dump.find("128 bytes"), std::string::npos);   // line
    EXPECT_NE(dump.find("512 entries"), std::string::npos); // WQ
    EXPECT_NE(dump.find("135 bytes"), std::string::npos);   // WQ entry
    EXPECT_NE(dump.find("32 entries"), std::string::npos);  // GPS-TLB
    EXPECT_NE(dump.find("49 bits"), std::string::npos);     // VA
    EXPECT_NE(dump.find("47 bits"), std::string::npos);     // PA
}

TEST(MultiGpuSystem, StatsAggregateEveryComponent)
{
    SystemConfig config;
    config.numGpus = 2;
    MultiGpuSystem system(config);
    const StatSet stats = system.stats();
    EXPECT_TRUE(stats.has("gpu0.l2.hits"));
    EXPECT_TRUE(stats.has("gpu1.tlb.misses"));
    EXPECT_TRUE(stats.has("interconnect.total_bytes"));
    EXPECT_TRUE(stats.has("driver.pages"));
}

TEST(MultiGpuSystem, ResetStatsClearsCountersNotState)
{
    SystemConfig config;
    config.numGpus = 2;
    MultiGpuSystem system(config);
    KernelCounters c;
    system.gpu(0).l2Path(0x1000, false, c);
    EXPECT_GT(system.gpu(0).l2().misses(), 0u);
    system.resetStats();
    EXPECT_EQ(system.gpu(0).l2().misses(), 0u);
    // Architectural state survives: the line is still cached.
    EXPECT_TRUE(system.gpu(0).l2().contains(0x1000));
}

TEST(MultiGpuSystemDeath, RejectsZeroGpus)
{
    SystemConfig config;
    config.numGpus = 0;
    EXPECT_DEATH(MultiGpuSystem system(config), "unsupported");
}

TEST(Logging, FatalThrowsCatchableError)
{
    try {
        gps_fatal("user did ", 42, " bad things");
        FAIL() << "gps_fatal returned";
    } catch (const FatalError& error) {
        EXPECT_NE(std::string(error.what()).find("42 bad things"),
                  std::string::npos);
    }
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(gps_panic("internal invariant ", 7, " broke"),
                 "invariant 7 broke");
}

TEST(LoggingDeath, AssertCarriesContext)
{
    const int x = 3;
    EXPECT_DEATH(gps_assert(x == 4, "x was ", x), "x was 3");
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    gps_warn("survivable condition ", 1);
    setVerbose(false);
    gps_inform("silenced");
    setVerbose(true);
    gps_inform("visible");
    setVerbose(false);
}

class ContextKinds : public ::testing::TestWithParam<ParadigmKind>
{};

TEST_P(ContextKinds, AllocSharedFollowsTheParadigm)
{
    SystemConfig sys_config;
    sys_config.numGpus = 2;
    MultiGpuSystem system(sys_config);
    auto paradigm = makeParadigm(GetParam(), system);
    WorkloadContext ctx(system, *paradigm);

    const Addr shared = ctx.allocShared(64 * KiB, "s", 1);
    const Region* region = system.addressSpace().regionOf(shared);
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->kind, paradigm->sharedKind());

    const Addr priv = ctx.allocPrivate(64 * KiB, "p", 1);
    const Region* priv_region = system.addressSpace().regionOf(priv);
    ASSERT_NE(priv_region, nullptr);
    EXPECT_EQ(priv_region->kind, MemKind::Pinned);
    EXPECT_EQ(priv_region->home, 1);
}

TEST_P(ContextKinds, AllocSharedManualIsManualOnlyUnderGps)
{
    SystemConfig sys_config;
    sys_config.numGpus = 2;
    MultiGpuSystem system(sys_config);
    auto paradigm = makeParadigm(GetParam(), system);
    WorkloadContext ctx(system, *paradigm);
    const Addr shared = ctx.allocSharedManual(64 * KiB, "m", 0);
    const Region* region = system.addressSpace().regionOf(shared);
    ASSERT_NE(region, nullptr);
    if (GetParam() == ParadigmKind::Gps) {
        EXPECT_TRUE(region->manualSubscription);
    } else {
        EXPECT_EQ(region->kind, paradigm->sharedKind());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllParadigms, ContextKinds,
    ::testing::ValuesIn(allParadigms()),
    [](const auto& info) {
        std::string name = to_string(info.param);
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace gps
