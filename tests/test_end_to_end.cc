/**
 * @file
 * End-to-end smoke matrix: every bundled workload under every paradigm
 * at a small scale, checking the invariants the paper's evaluation
 * rests on (valid results, traffic only where expected, infinite
 * bandwidth as the performance bound).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "api/runner.hh"

namespace gps
{
namespace
{

constexpr double smokeScale = 0.0625;

using Cell = std::tuple<std::string, ParadigmKind>;

class EndToEnd : public ::testing::TestWithParam<Cell>
{
  protected:
    static RunConfig
    config(ParadigmKind paradigm, std::size_t gpus = 4)
    {
        RunConfig config;
        config.system.numGpus = gpus;
        config.scale = smokeScale;
        config.paradigm = paradigm;
        return config;
    }
};

TEST_P(EndToEnd, RunsAndProducesSaneResults)
{
    const auto& [app, paradigm] = GetParam();
    const RunResult result = runWorkload(app, config(paradigm));
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_GT(result.totals.accesses, 0u);
    EXPECT_EQ(result.paradigm, to_string(paradigm));

    switch (paradigm) {
      case ParadigmKind::InfiniteBw:
        EXPECT_EQ(result.interconnectBytes, 0u);
        break;
      case ParadigmKind::Um:
      case ParadigmKind::UmHints:
        EXPECT_GT(result.totals.pageFaults, 0u) << app;
        break;
      case ParadigmKind::Memcpy:
        EXPECT_EQ(result.totals.pageFaults, 0u);
        EXPECT_GT(result.interconnectBytes, 0u);
        break;
      case ParadigmKind::Gps:
        EXPECT_TRUE(result.hasSubscriberHist);
        EXPECT_EQ(result.totals.pageFaults, result.totals.sysCollapses);
        break;
      case ParadigmKind::Rdl:
        EXPECT_EQ(result.totals.pageFaults, 0u);
        break;
    }
}

std::vector<Cell>
allCells()
{
    std::vector<Cell> cells;
    for (const std::string& app : workloadNames()) {
        for (const ParadigmKind paradigm : allParadigms())
            cells.emplace_back(app, paradigm);
    }
    return cells;
}

std::string
cellName(const ::testing::TestParamInfo<Cell>& info)
{
    std::string name = std::get<0>(info.param) + "_" +
                       to_string(std::get<1>(info.param));
    for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EndToEnd,
                         ::testing::ValuesIn(allCells()), cellName);

TEST(EndToEndInvariants, InfiniteBandwidthBoundsGpsPerApp)
{
    for (const std::string& app : workloadNames()) {
        RunConfig config;
        config.system.numGpus = 4;
        config.scale = smokeScale;
        config.paradigm = ParadigmKind::Gps;
        const RunResult gps = runWorkload(app, config);
        config.paradigm = ParadigmKind::InfiniteBw;
        const RunResult infinite = runWorkload(app, config);
        EXPECT_LE(infinite.totalTime,
                  gps.totalTime + gps.totalTime / 10)
            << app;
    }
}

TEST(EndToEndInvariants, SixteenGpuSystemRuns)
{
    RunConfig config;
    config.system.numGpus = 16;
    config.system.interconnect = InterconnectKind::Pcie6;
    config.scale = smokeScale;
    config.paradigm = ParadigmKind::Gps;
    const RunResult result = runWorkload("Jacobi", config);
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_EQ(result.numGpus, 16u);
}

TEST(EndToEndInvariants, GpsSubscriptionSavesTrafficOnHaloApps)
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = smokeScale;
    config.paradigm = ParadigmKind::Gps;
    const RunResult with_subs = runWorkload("Jacobi", config);
    config.system.gps.autoUnsubscribe = false;
    const RunResult without = runWorkload("Jacobi", config);
    EXPECT_LT(with_subs.interconnectBytes, without.interconnectBytes);
    EXPECT_LE(with_subs.totalTime, without.totalTime);
}

TEST(EndToEndInvariants, FasterInterconnectNeverHurtsGps)
{
    RunConfig config;
    config.system.numGpus = 4;
    config.scale = smokeScale;
    config.paradigm = ParadigmKind::Gps;
    config.system.interconnect = InterconnectKind::Pcie3;
    const RunResult slow = runWorkload("EQWP", config);
    config.system.interconnect = InterconnectKind::Pcie6;
    const RunResult fast = runWorkload("EQWP", config);
    EXPECT_LE(fast.totalTime, slow.totalTime);
}

} // namespace
} // namespace gps
