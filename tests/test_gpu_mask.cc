/**
 * @file
 * Unit tests for GPU bitmask helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/gpu_mask.hh"

namespace gps
{
namespace
{

TEST(GpuMask, SetClearHas)
{
    GpuMask mask = 0;
    mask = maskSet(mask, 3);
    EXPECT_TRUE(maskHas(mask, 3));
    EXPECT_FALSE(maskHas(mask, 2));
    mask = maskClear(mask, 3);
    EXPECT_FALSE(maskHas(mask, 3));
}

TEST(GpuMask, CountMatchesPopulation)
{
    GpuMask mask = 0;
    EXPECT_EQ(maskCount(mask), 0u);
    mask = maskSet(maskSet(maskSet(mask, 0), 5), 13);
    EXPECT_EQ(maskCount(mask), 3u);
}

TEST(GpuMask, AllCoversExactlyN)
{
    for (std::size_t n = 0; n <= 16; ++n) {
        const GpuMask mask = maskAll(n);
        EXPECT_EQ(maskCount(mask), n) << "n=" << n;
        for (GpuId g = 0; g < n; ++g)
            EXPECT_TRUE(maskHas(mask, g));
        if (n < maxGpus)
            EXPECT_FALSE(maskHas(mask, static_cast<GpuId>(n)));
    }
}

TEST(GpuMask, FirstIsLowestSetBit)
{
    EXPECT_EQ(maskFirst(0), invalidGpu);
    EXPECT_EQ(maskFirst(gpuBit(7)), 7);
    EXPECT_EQ(maskFirst(gpuBit(7) | gpuBit(2)), 2);
}

TEST(GpuMask, ForEachVisitsAscending)
{
    const GpuMask mask = gpuBit(1) | gpuBit(4) | gpuBit(9);
    std::vector<GpuId> seen;
    maskForEach(mask, [&](GpuId g) { seen.push_back(g); });
    EXPECT_EQ(seen, (std::vector<GpuId>{1, 4, 9}));
}

TEST(GpuMask, ForEachOnEmptyDoesNothing)
{
    int calls = 0;
    maskForEach(0, [&](GpuId) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(GpuMask, ClearIsIdempotent)
{
    GpuMask mask = gpuBit(2);
    mask = maskClear(mask, 5);
    EXPECT_EQ(mask, gpuBit(2));
}

class GpuMaskParam : public ::testing::TestWithParam<GpuId>
{};

TEST_P(GpuMaskParam, SetThenClearRoundTrips)
{
    const GpuId gpu = GetParam();
    const GpuMask base = gpuBit(0) | gpuBit(31);
    GpuMask mask = maskSet(base, gpu);
    EXPECT_TRUE(maskHas(mask, gpu));
    mask = maskClear(mask, gpu);
    if (gpu != 0 && gpu != 31)
        EXPECT_EQ(mask, base);
    EXPECT_FALSE(maskHas(mask, gpu));
}

INSTANTIATE_TEST_SUITE_P(AllBits, GpuMaskParam,
                         ::testing::Values(1, 2, 7, 15, 16, 30));

} // namespace
} // namespace gps
