/**
 * @file
 * Crash-safety tests for the content-addressed run store: round trips,
 * orphaned-temp sweeping, truncated and bit-flipped entries being
 * quarantined (never served), hash collisions degrading to misses, and
 * torn-read-freedom for concurrent readers during publishes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "serve/run_store.hh"

namespace gps
{
namespace
{

/** Fresh store directory per test, removed on teardown. */
class RunStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/gps_store_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        for (const std::string& name : listDir())
            std::remove((dir_ + '/' + name).c_str());
        ::rmdir(dir_.c_str());
    }

    std::vector<std::string>
    listDir() const
    {
        std::vector<std::string> names;
        DIR* d = ::opendir(dir_.c_str());
        if (d == nullptr)
            return names;
        while (struct dirent* ent = ::readdir(d)) {
            const std::string name = ent->d_name;
            if (name != "." && name != "..")
                names.push_back(name);
        }
        ::closedir(d);
        return names;
    }

    std::string
    entryPath(const std::string& key) const
    {
        return dir_ + '/' + RunStore::entryName(key);
    }

    std::string
    readFile(const std::string& path) const
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    void
    writeFile(const std::string& path, const std::string& bytes) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }

    std::size_t
    countMatching(const std::string& needle) const
    {
        std::size_t n = 0;
        for (const std::string& name : listDir())
            n += name.find(needle) != std::string::npos ? 1 : 0;
        return n;
    }

    std::string dir_;
};

TEST_F(RunStoreTest, MissOnEmptyStore)
{
    RunStore store(dir_);
    EXPECT_FALSE(store.lookup("no such key").has_value());
    EXPECT_EQ(store.stats().lookups, 1u);
    EXPECT_EQ(store.stats().hits, 0u);
}

TEST_F(RunStoreTest, RoundTripReturnsExactBytes)
{
    RunStore store(dir_);
    const std::string key = "app=Jacobi|gpus=4|paradigm=GPS";
    const std::string payload =
        "{\"total_time_ms\":1.25,\"bytes\":[0,1,2]}";
    store.publish(key, payload);
    const auto got = store.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    EXPECT_EQ(store.stats().publishes, 1u);
    EXPECT_EQ(store.stats().hits, 1u);
}

TEST_F(RunStoreTest, SurvivesReopenByteIdentical)
{
    const std::string key = "key with spaces and | separators";
    const std::string payload(64 * 1024, 'x');
    {
        RunStore store(dir_);
        store.publish(key, payload);
        store.flush();
    }
    RunStore reopened(dir_);
    const auto got = reopened.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
}

TEST_F(RunStoreTest, LastWriterWins)
{
    RunStore store(dir_);
    store.publish("k", "first");
    store.publish("k", "second");
    const auto got = store.lookup("k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "second");
}

TEST_F(RunStoreTest, OrphanedTempFilesAreSweptOnOpen)
{
    // A writer that died mid-publish leaves <entry>.tmp.<pid>.<seq>
    // behind; a fresh daemon must remove it and serve a miss, not a
    // half-written entry.
    {
        RunStore store(dir_);
        store.publish("good", "payload");
    }
    const std::string orphan =
        entryPath("crashed") + ".tmp.12345.0";
    writeFile(orphan, "GPSSTORE 1 deadbeef 7 9999999\ncrashed\ntrunc");
    RunStore store(dir_);
    EXPECT_GE(store.stats().tempsSwept, 1u);
    EXPECT_EQ(countMatching(".tmp."), 0u);
    EXPECT_FALSE(store.lookup("crashed").has_value());
    // The completed entry published before the crash is untouched.
    EXPECT_TRUE(store.lookup("good").has_value());
}

TEST_F(RunStoreTest, TruncatedEntryIsQuarantinedAndRecomputable)
{
    const std::string key = "truncated-entry";
    {
        RunStore store(dir_);
        store.publish(key, std::string(4096, 'p'));
    }
    // Simulate a torn write that somehow hit the final name (e.g. a
    // filesystem without atomic rename durability): chop the file.
    const std::string full = readFile(entryPath(key));
    ASSERT_GT(full.size(), 100u);
    writeFile(entryPath(key), full.substr(0, full.size() / 2));

    RunStore store(dir_);
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);
    // The bad entry was renamed aside, not deleted (post-mortem) and
    // not left in place (would be served forever).
    EXPECT_EQ(countMatching(".quarantined."), 1u);

    // Republish and the key works again.
    store.publish(key, "fresh payload");
    const auto got = store.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "fresh payload");
}

TEST_F(RunStoreTest, CrcMismatchIsQuarantined)
{
    const std::string key = "bitflip";
    const std::string payload(1024, 'q');
    {
        RunStore store(dir_);
        store.publish(key, payload);
    }
    std::string bytes = readFile(entryPath(key));
    bytes[bytes.size() - 10] ^= 0x01; // flip one payload bit
    writeFile(entryPath(key), bytes);

    RunStore store(dir_);
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_EQ(countMatching(".quarantined."), 1u);
}

TEST_F(RunStoreTest, GarbageHeaderIsQuarantined)
{
    const std::string key = "garbage";
    writeFile(entryPath(key), "not a store entry at all\n");
    RunStore store(dir_);
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST_F(RunStoreTest, HashCollisionDegradesToMiss)
{
    // Forge a collision: copy key A's (valid) entry file onto key B's
    // entry name. The stored key inside the file says "A", so a lookup
    // of B must miss rather than return A's payload.
    const std::string key_a = "collision-a";
    const std::string key_b = "collision-b";
    {
        RunStore store(dir_);
        store.publish(key_a, "payload of A");
    }
    writeFile(entryPath(key_b), readFile(entryPath(key_a)));

    RunStore store(dir_);
    EXPECT_FALSE(store.lookup(key_b).has_value());
    // A collision is not corruption: the entry is valid, just for a
    // different key, so nothing is quarantined.
    EXPECT_EQ(store.stats().quarantined, 0u);
    const auto a = store.lookup(key_a);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, "payload of A");
}

TEST_F(RunStoreTest, ConcurrentReadersNeverSeeTornEntries)
{
    // Readers race lookups against a writer republishing the same key.
    // The atomic-rename protocol guarantees each hit is one complete
    // published payload — never a mix of two, never a partial write.
    RunStore store(dir_);
    const std::string key = "contended";
    const std::string payload_a(8192, 'A');
    const std::string payload_b(8192, 'B');
    store.publish(key, payload_a);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> hits{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto got = store.lookup(key);
                if (!got.has_value())
                    continue;
                ++hits;
                if (*got != payload_a && *got != payload_b)
                    ++torn;
            }
        });
    }
    for (int i = 0; i < 200; ++i)
        store.publish(key, (i % 2) != 0 ? payload_a : payload_b);
    stop.store(true);
    for (std::thread& t : readers)
        t.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(hits.load(), 0u);
    EXPECT_EQ(store.stats().quarantined, 0u);
}

TEST_F(RunStoreTest, QuarantineNeverClobbersEarlierForensicCopies)
{
    // An aside file from an earlier quarantine (same entry, e.g. after
    // a crash-restart loop with a recycled pid) must survive: the next
    // quarantine claims the next free slot instead of renaming over it.
    const std::string key = "repeat-offender";
    {
        RunStore store(dir_);
        store.publish(key, std::string(512, 'a'));
    }
    const std::string sentinel = "evidence from a previous incident";
    writeFile(entryPath(key) + ".quarantined.0", sentinel);

    std::string corrupt = readFile(entryPath(key));
    corrupt[corrupt.size() - 5] ^= 0x01;
    writeFile(entryPath(key), corrupt);

    RunStore store(dir_);
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);

    // Both generations exist, each with its own bytes.
    EXPECT_EQ(readFile(entryPath(key) + ".quarantined.0"), sentinel);
    EXPECT_EQ(readFile(entryPath(key) + ".quarantined.1"), corrupt);
    EXPECT_EQ(countMatching(".quarantined."), 2u);

    // A third corruption lands in slot 2.
    store.publish(key, "fresh");
    std::string again = readFile(entryPath(key));
    again[0] ^= 0x01;
    writeFile(entryPath(key), again);
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(readFile(entryPath(key) + ".quarantined.2"), again);
    EXPECT_EQ(readFile(entryPath(key) + ".quarantined.0"), sentinel);
    EXPECT_EQ(countMatching(".quarantined."), 3u);
}

TEST_F(RunStoreTest, EntryNameIsStableAndFilesystemSafe)
{
    const std::string name = RunStore::entryName("some|key=1");
    EXPECT_EQ(name, RunStore::entryName("some|key=1"));
    EXPECT_NE(name, RunStore::entryName("some|key=2"));
    EXPECT_EQ(name.find('/'), std::string::npos);
    EXPECT_NE(name.find(".gpsrun"), std::string::npos);
}

} // namespace
} // namespace gps
