/**
 * @file
 * Tests for the sweep service and its line protocol: request parsing,
 * store-hit byte-identity, fair scheduling, admission control with
 * backoff hints, deadlines, cooperative mid-run cancellation, drain
 * semantics, checker/fault composition, and a concurrent stress mix of
 * fresh/cached/cancelled/deadline-expired jobs (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/sweep.hh"
#include "common/json.hh"
#include "serve/protocol.hh"
#include "serve/service.hh"

namespace gps
{
namespace
{

constexpr double smokeScale = 0.0625;

ServeJob
smokeJob(const std::string& client, std::uint64_t id,
         double scale = smokeScale, std::uint32_t wq_entries = 512)
{
    ServeJob job;
    job.clientId = client;
    job.id = id;
    job.workload = "Jacobi";
    job.config.paradigm = ParadigmKind::Gps;
    job.config.system.numGpus = 2;
    job.config.scale = scale;
    job.config.system.gps.wqEntries = wq_entries;
    return job;
}

/** Collects one response per submitted job; wakes waiters on arrival. */
class Collector
{
  public:
    SweepService::Callback
    callback()
    {
        return [this](const ServeResponse& r) {
            const std::lock_guard<std::mutex> lock(mu_);
            responses_.push_back(r);
            cv_.notify_all();
        };
    }

    std::vector<ServeResponse>
    waitFor(std::size_t count,
            std::chrono::seconds timeout = std::chrono::seconds(120))
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait_for(lk, timeout,
                     [&] { return responses_.size() >= count; });
        return responses_;
    }

    std::size_t
    count()
    {
        const std::lock_guard<std::mutex> lock(mu_);
        return responses_.size();
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<ServeResponse> responses_;
};

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/gps_serve_test_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    return dir != nullptr ? dir : "/tmp/gps_serve_test_fallback";
}

// --- Basic service behavior -------------------------------------------

TEST(Serve, RunsAJobAndReturnsResultJson)
{
    SweepService service({/*workers=*/2, /*maxQueue=*/16, 0, ""});
    Collector collected;
    service.submit(smokeJob("c", 1), collected.callback());
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    const ServeResponse& r = responses.front();
    EXPECT_EQ(r.status, JobStatus::Ok);
    EXPECT_EQ(r.id, 1u);
    EXPECT_FALSE(r.storeHit);
    EXPECT_GT(r.runMs, 0.0);

    std::string error;
    const auto doc = parseJson(r.payload, error);
    ASSERT_NE(doc, nullptr) << error;
    EXPECT_EQ(doc->string("workload"), "Jacobi");
    EXPECT_EQ(doc->string("paradigm"), "GPS");
}

TEST(Serve, StoreHitIsByteIdenticalAcrossRestart)
{
    const std::string dir = makeTempDir();
    std::string fresh;
    {
        SweepService service({2, 16, 0, dir});
        Collector collected;
        service.submit(smokeJob("c", 1), collected.callback());
        const auto responses = collected.waitFor(1);
        ASSERT_EQ(responses.size(), 1u);
        ASSERT_EQ(responses.front().status, JobStatus::Ok);
        EXPECT_FALSE(responses.front().storeHit);
        fresh = responses.front().payload;
        service.shutdown(false);
    }
    // A new service over the same store: the daemon was restarted.
    SweepService service({2, 16, 0, dir});
    Collector collected;
    service.submit(smokeJob("c", 2), collected.callback());
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.front().status, JobStatus::Ok);
    EXPECT_TRUE(responses.front().storeHit);
    EXPECT_EQ(responses.front().payload, fresh); // byte-identical
}

TEST(Serve, NoCacheSkipsLookupButStillPublishes)
{
    const std::string dir = makeTempDir();
    SweepService service({2, 16, 0, dir});
    Collector collected;
    ServeJob job = smokeJob("c", 1);
    job.noCache = true;
    service.submit(job, collected.callback());
    collected.waitFor(1);
    ServeJob again = smokeJob("c", 2);
    again.noCache = true;
    service.submit(again, collected.callback());
    const auto responses = collected.waitFor(2);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_FALSE(responses[0].storeHit);
    EXPECT_FALSE(responses[1].storeHit);
    // Both runs were executed fresh yet the result is on disk for
    // cache-enabled clients.
    EXPECT_GE(service.stats().store.publishes, 1u);
    EXPECT_EQ(responses[0].payload, responses[1].payload);
}

// --- Checker / fault composition --------------------------------------

TEST(Serve, CheckerStaysGreenUnderInjectedLinkFaults)
{
    SweepService service({2, 16, 0, ""});
    Collector collected;
    ServeJob job = smokeJob("c", 1);
    job.config.system.numGpus = 4;
    job.config.check.enabled = true;
    job.config.faultPlan.addSpec("link:down@500us:gpu0-gpu1");
    job.config.faultPlan.addSpec("link:degrade@250us:2-3:0.5");
    service.submit(job, collected.callback());
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    // The reference model tracks the rerouted execution: faults alone
    // must not read as divergence.
    EXPECT_EQ(responses.front().status, JobStatus::Ok)
        << responses.front().errorType << ": "
        << responses.front().errorMessage;
}

TEST(Serve, CheckDivergenceIsPerJobErrorNotPoolAbort)
{
    const std::string dir = makeTempDir();
    SweepService service({2, 16, 0, dir});
    Collector collected;
    service.submit(smokeJob("c", 1), collected.callback());
    ServeJob mutated = smokeJob("c", 2, smokeScale, 256);
    mutated.config.check.enabled = true;
    mutated.config.check.testMutation = 1; // seeded reference defect
    service.submit(mutated, collected.callback());
    service.submit(smokeJob("c", 3, smokeScale, 128),
                   collected.callback());

    const auto responses = collected.waitFor(3);
    ASSERT_EQ(responses.size(), 3u);
    std::size_t ok = 0;
    for (const ServeResponse& r : responses) {
        if (r.id == 2) {
            EXPECT_EQ(r.status, JobStatus::Error);
            EXPECT_EQ(r.errorType, "CheckDivergence");
            EXPECT_FALSE(r.errorMessage.empty());
        } else {
            EXPECT_EQ(r.status, JobStatus::Ok) << r.errorMessage;
            ++ok;
        }
    }
    // Sibling jobs completed normally: no pool abort.
    EXPECT_EQ(ok, 2u);
    // The diverged result was never published to the store.
    EXPECT_EQ(service.stats().store.publishes, 2u);
}

TEST(Serve, RunExceptionBecomesStructuredError)
{
    SweepService service({1, 16, 0, ""});
    Collector collected;
    ServeJob job = smokeJob("c", 1);
    job.workload = "NoSuchWorkload";
    service.submit(job, collected.callback());
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.front().status, JobStatus::Error);
    EXPECT_FALSE(responses.front().errorType.empty());
    EXPECT_FALSE(responses.front().errorMessage.empty());
}

// --- Scheduling: fairness, admission, deadlines, cancellation ---------

TEST(Serve, FairQueueingInterleavesClients)
{
    // One worker; client A floods 6 jobs, then B submits one. Fair
    // round-robin must run B's job before A's backlog is exhausted.
    SweepService service({1, 64, 0, ""});
    Collector collected;
    std::mutex order_mu;
    std::vector<std::string> completion_order;
    const auto record = [&](const ServeResponse& r) {
        const std::lock_guard<std::mutex> lock(order_mu);
        completion_order.push_back(r.clientId);
    };
    for (std::uint64_t i = 1; i <= 6; ++i)
        service.submit(smokeJob("A", i),
                       [&, cb = collected.callback()](
                           const ServeResponse& r) {
                           record(r);
                           cb(r);
                       });
    service.submit(smokeJob("B", 100),
                   [&, cb = collected.callback()](
                       const ServeResponse& r) {
                       record(r);
                       cb(r);
                   });
    collected.waitFor(7);
    std::size_t b_pos = 0;
    {
        const std::lock_guard<std::mutex> lock(order_mu);
        ASSERT_EQ(completion_order.size(), 7u);
        for (std::size_t i = 0; i < completion_order.size(); ++i) {
            if (completion_order[i] == "B")
                b_pos = i;
        }
    }
    // B must not be starved to the end of A's flood.
    EXPECT_LT(b_pos, 4u);
}

TEST(Serve, QueueFullIsRejectedWithRetryAfterHint)
{
    SweepService service({1, /*maxQueue=*/2, 0, ""});
    Collector collected;
    std::size_t rejected = 0;
    std::uint64_t hint = 0;
    // Flood far past the bound; excess must be shed synchronously.
    for (std::uint64_t i = 1; i <= 12; ++i)
        service.submit(smokeJob("c", i),
                       [&, cb = collected.callback()](
                           const ServeResponse& r) {
                           if (r.status == JobStatus::Rejected) {
                               ++rejected;
                               hint = r.retryAfterMs;
                           }
                           cb(r);
                       });
    const auto responses = collected.waitFor(12);
    ASSERT_EQ(responses.size(), 12u);
    EXPECT_GT(rejected, 0u);
    EXPECT_GE(hint, 1u); // Retry-After-style backoff, never zero
    EXPECT_EQ(service.stats().rejected, rejected);
}

TEST(Serve, DeadlineExpiredWhileQueuedNeverRuns)
{
    SweepService service({1, 64, 0, ""});
    Collector collected;
    // Occupy the single worker with a long run, then enqueue a job
    // whose deadline lapses while it waits.
    service.submit(smokeJob("c", 1, /*scale=*/0.5),
                   collected.callback());
    ServeJob doomed = smokeJob("c", 2);
    doomed.deadlineMs = 1;
    service.submit(doomed, collected.callback());
    const auto responses = collected.waitFor(2);
    ASSERT_EQ(responses.size(), 2u);
    for (const ServeResponse& r : responses) {
        if (r.id == 2) {
            EXPECT_EQ(r.status, JobStatus::DeadlineExpired);
            EXPECT_EQ(r.errorType, "DeadlineExpired");
            EXPECT_EQ(r.runMs, 0.0); // never started
        }
    }
    EXPECT_EQ(service.stats().expired, 1u);
}

TEST(Serve, MidRunDeadlineCancelsCooperatively)
{
    SweepService service({1, 64, 0, ""});
    Collector collected;
    ServeJob job = smokeJob("c", 1, /*scale=*/2.0);
    job.deadlineMs = 30; // lapses mid-run, not while queued
    service.submit(job, collected.callback());
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.front().status, JobStatus::DeadlineExpired);
    // The Runner observed the token and unwound before finishing.
    EXPECT_GT(responses.front().runMs, 0.0);
}

TEST(Serve, CancelReachesPendingAndRunningJobs)
{
    SweepService service({1, 64, 0, ""});
    Collector collected;
    // Long-running job to cancel mid-run.
    service.submit(smokeJob("c", 7, /*scale=*/2.0),
                   collected.callback());
    // Wait until it is actually running so the cancel exercises the
    // token path rather than the queue-removal path.
    for (int i = 0; i < 2000 && service.stats().running == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(service.stats().running, 1u);
    // Plus two queued jobs under the same id from the same client.
    service.submit(smokeJob("c", 7), collected.callback());
    service.submit(smokeJob("c", 7), collected.callback());
    // And one unrelated job that must survive.
    service.submit(smokeJob("c", 8), collected.callback());

    const std::size_t reached = service.cancel("c", 7);
    EXPECT_EQ(reached, 3u);

    const auto responses = collected.waitFor(4);
    ASSERT_EQ(responses.size(), 4u);
    for (const ServeResponse& r : responses) {
        if (r.id == 7) {
            EXPECT_EQ(r.status, JobStatus::Cancelled) << r.errorMessage;
        } else {
            EXPECT_EQ(r.status, JobStatus::Ok) << r.errorMessage;
        }
    }
    EXPECT_EQ(service.stats().cancelled, 3u);
}

TEST(Serve, CancelForAnotherClientReachesNothing)
{
    SweepService service({1, 64, 0, ""});
    Collector collected;
    service.submit(smokeJob("alice", 1, /*scale=*/0.5),
                   collected.callback());
    EXPECT_EQ(service.cancel("mallory", 1), 0u);
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.front().status, JobStatus::Ok);
}

// --- Drain semantics ---------------------------------------------------

TEST(Serve, DrainWithoutCancelFinishesAcceptedWork)
{
    SweepService service({2, 64, 0, ""});
    Collector collected;
    for (std::uint64_t i = 1; i <= 5; ++i)
        service.submit(smokeJob("c", i), collected.callback());
    service.shutdown(/*cancelPending=*/false);
    const auto responses = collected.waitFor(5);
    ASSERT_EQ(responses.size(), 5u);
    for (const ServeResponse& r : responses)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.errorMessage;
}

TEST(Serve, DrainWithCancelAnswersBacklogAndFinishesInFlight)
{
    SweepService service({1, 64, 0, ""});
    Collector collected;
    service.submit(smokeJob("c", 1, /*scale=*/0.5),
                   collected.callback());
    for (int i = 0; i < 2000 && service.stats().running == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (std::uint64_t i = 2; i <= 5; ++i)
        service.submit(smokeJob("c", i), collected.callback());
    service.shutdown(/*cancelPending=*/true);
    const auto responses = collected.waitFor(5);
    ASSERT_EQ(responses.size(), 5u);
    std::size_t ok = 0, cancelled = 0;
    for (const ServeResponse& r : responses) {
        ok += r.status == JobStatus::Ok ? 1 : 0;
        cancelled += r.status == JobStatus::Cancelled ? 1 : 0;
    }
    // The in-flight run finished; the backlog was answered Cancelled.
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(cancelled, 4u);
}

TEST(Serve, SubmitAfterDrainIsRejected)
{
    SweepService service({1, 64, 0, ""});
    service.beginDrain(true);
    Collector collected;
    service.submit(smokeJob("c", 1), collected.callback());
    const auto responses = collected.waitFor(1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses.front().status, JobStatus::Rejected);
    EXPECT_EQ(responses.front().errorType, "ShuttingDown");
}

// --- Concurrency stress (TSan target) ---------------------------------

TEST(Serve, ConcurrentStressMixedOutcomes)
{
    // >= 200 requests from parallel submitters, mixing fresh configs,
    // store-hit duplicates, mid-run/pending cancellations and expired
    // deadlines, with a store in the loop. Every submission must get
    // exactly one response; no response may be torn or dropped. CI
    // additionally runs this binary under TSan (zero races).
    const std::string dir = makeTempDir();
    SweepService service({4, 512, 0, dir});

    constexpr std::size_t clients = 8;
    constexpr std::size_t perClient = 26; // 208 total
    std::atomic<std::size_t> responded{0};
    std::atomic<std::size_t> byStatus[5] = {};

    std::vector<std::thread> submitters;
    for (std::size_t c = 0; c < clients; ++c) {
        submitters.emplace_back([&, c] {
            const std::string client = "client" + std::to_string(c);
            for (std::size_t i = 0; i < perClient; ++i) {
                // A few distinct configs per client so the mix has
                // both fresh runs and (cross-client) store hits.
                ServeJob job = smokeJob(
                    client, i,
                    smokeScale,
                    static_cast<std::uint32_t>(64 << (i % 4)));
                if (i % 13 == 5)
                    job.deadlineMs = 1; // will expire under load
                service.submit(
                    job, [&](const ServeResponse& r) {
                        byStatus[static_cast<std::size_t>(r.status)]
                            .fetch_add(1, std::memory_order_relaxed);
                        responded.fetch_add(1,
                                            std::memory_order_relaxed);
                    });
                if (i % 7 == 3)
                    service.cancel(client, i); // racy on purpose
            }
        });
    }
    for (std::thread& t : submitters)
        t.join();
    service.shutdown(/*cancelPending=*/false);

    constexpr std::size_t total = clients * perClient;
    EXPECT_EQ(responded.load(), total);
    EXPECT_EQ(service.stats().submitted, total);
    const std::size_t ok =
        byStatus[static_cast<std::size_t>(JobStatus::Ok)].load();
    const std::size_t accounted =
        ok +
        byStatus[static_cast<std::size_t>(JobStatus::Error)].load() +
        byStatus[static_cast<std::size_t>(JobStatus::Cancelled)].load() +
        byStatus[static_cast<std::size_t>(JobStatus::DeadlineExpired)]
            .load() +
        byStatus[static_cast<std::size_t>(JobStatus::Rejected)].load();
    EXPECT_EQ(accounted, total);
    EXPECT_GT(ok, 0u);
    // The duplicate configs across 8 clients guarantee store hits.
    EXPECT_GT(service.stats().storeHits, 0u);
    EXPECT_EQ(service.stats().store.quarantined, 0u);
}

// --- Protocol layer ----------------------------------------------------

TEST(ServeProtocol, ParsesRunRequest)
{
    ServeRequest request;
    std::string error;
    ASSERT_TRUE(parseServeRequest(
        R"({"id":9,"method":"run","params":{"app":"Jacobi",)"
        R"("paradigm":"GPS","gpus":2,"scale":0.25,"deadline_ms":500}})",
        request, error))
        << error;
    EXPECT_EQ(request.id, 9u);
    ASSERT_EQ(request.jobs.size(), 1u);
    EXPECT_EQ(request.jobs[0].workload, "Jacobi");
    EXPECT_EQ(request.jobs[0].config.system.numGpus, 2u);
    EXPECT_EQ(request.jobs[0].deadlineMs, 500u);
}

TEST(ServeProtocol, ParsesBatchWithIndices)
{
    ServeRequest request;
    std::string error;
    ASSERT_TRUE(parseServeRequest(
        R"({"id":3,"method":"batch","params":{"jobs":[)"
        R"({"app":"Jacobi"},{"app":"NBody","gpus":8}]}})",
        request, error))
        << error;
    ASSERT_EQ(request.jobs.size(), 2u);
    EXPECT_EQ(request.jobs[0].index, 0u);
    EXPECT_EQ(request.jobs[1].index, 1u);
    EXPECT_EQ(request.jobs[1].config.system.numGpus, 8u);
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    const char* bad[] = {
        "not json at all",
        "[1,2,3]",
        R"({"id":1})",
        R"({"id":1,"method":"frobnicate"})",
        R"({"id":1,"method":"run"})",
        R"({"id":1,"method":"run","params":{}})",
        R"({"id":1,"method":"run","params":{"app":"Jacobi","gpus":0}})",
        R"({"id":1,"method":"run","params":{"app":"J","paradigm":"X"}})",
        R"({"id":1,"method":"batch","params":{"jobs":[]}})",
        R"({"id":1,"method":"cancel"})",
    };
    for (const char* line : bad) {
        ServeRequest request;
        std::string error;
        EXPECT_FALSE(parseServeRequest(line, request, error)) << line;
        EXPECT_FALSE(error.empty()) << line;
    }
}

TEST(ServeProtocol, ResponseJsonSplicesPayloadVerbatim)
{
    ServeResponse r;
    r.id = 4;
    r.index = 1;
    r.status = JobStatus::Ok;
    r.payload = R"({"total_time_ms":1.5,"nested":{"a":[1,2]}})";
    const std::string line = responseToJson(r);
    EXPECT_NE(line.find("\"result\":" + r.payload), std::string::npos)
        << line;
    std::string error;
    EXPECT_NE(parseJson(line, error), nullptr) << error;
}

TEST(ServeProtocol, ErrorResponseCarriesTypeAndMessage)
{
    ServeResponse r;
    r.id = 5;
    r.status = JobStatus::Error;
    r.errorType = "CheckDivergence";
    r.errorMessage = "counter mismatch";
    const std::string line = responseToJson(r);
    EXPECT_NE(line.find("\"type\":\"CheckDivergence\""),
              std::string::npos);
    EXPECT_NE(line.find("\"message\":\"counter mismatch\""),
              std::string::npos);
    EXPECT_EQ(line.find("\"result\""), std::string::npos);
}

TEST(ServeProtocol, LineProtocolDrivesServiceEndToEnd)
{
    SweepService service({2, 16, 0, ""});
    LineProtocol protocol(service);
    std::mutex mu;
    std::vector<std::string> lines;
    const LineProtocol::Write write = [&](const std::string& line) {
        const std::lock_guard<std::mutex> lock(mu);
        lines.push_back(line);
    };

    EXPECT_EQ(protocol.handleLine("t", R"({"id":1,"method":"ping"})",
                                  write),
              LineProtocol::Action::None);
    EXPECT_EQ(protocol.handleLine("t", "   ", write),
              LineProtocol::Action::None); // blank lines tolerated
    EXPECT_EQ(protocol.handleLine("t", "garbage", write),
              LineProtocol::Action::None);
    EXPECT_EQ(protocol.handleLine(
                  "t",
                  R"({"id":2,"method":"run","params":{"app":"Jacobi",)"
                      R"("gpus":2,"scale":0.0625}})",
                  write),
              LineProtocol::Action::None);
    service.shutdown(/*cancelPending=*/false);
    EXPECT_EQ(protocol.handleLine("t", R"({"id":3,"method":"shutdown"})",
                                  write),
              LineProtocol::Action::Shutdown);

    const std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(lines[1].find("BadRequest"), std::string::npos);
    // The run's response arrived before shutdown's ack (drain waited).
    EXPECT_NE(lines[2].find("\"id\":2"), std::string::npos);
    EXPECT_NE(lines[2].find("\"result\":{"), std::string::npos);
    EXPECT_NE(lines[3].find("\"shutting_down\":true"),
              std::string::npos);
}

TEST(ServeProtocol, MetricsVerbExposesServiceCounters)
{
    SweepService service({2, 16, 0, ""});
    LineProtocol protocol(service);
    std::mutex mu;
    std::vector<std::string> lines;
    const LineProtocol::Write write = [&](const std::string& line) {
        const std::lock_guard<std::mutex> lock(mu);
        lines.push_back(line);
    };

    protocol.handleLine(
        "t",
        R"({"id":1,"method":"run","params":{"app":"Jacobi",)"
            R"("gpus":2,"scale":0.0625}})",
        write);
    service.awaitIdle();
    protocol.handleLine("t", R"({"id":2,"method":"metrics"})", write);

    const std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(lines.size(), 2u);
    const std::string& metrics = lines[1];
    std::string error;
    const auto doc = parseJson(metrics, error);
    ASSERT_NE(doc, nullptr) << error;
    EXPECT_EQ(doc->string("status"), "ok");
    const JsonValue* list = doc->find("metrics");
    ASSERT_NE(list, nullptr);
    ASSERT_TRUE(list->isArray());
    double submitted = -1.0, completed = -1.0;
    bool run_latency = false;
    for (const JsonValue& m : list->items()) {
        const std::string name = m.string("name");
        if (name == "serve.jobs.submitted")
            submitted = m.number("value", -1.0);
        if (name == "serve.jobs.completed")
            completed = m.number("value", -1.0);
        if (name == "serve.verb.run.latency_p99")
            run_latency = true;
    }
    EXPECT_DOUBLE_EQ(submitted, 1.0);
    EXPECT_DOUBLE_EQ(completed, 1.0);
    EXPECT_TRUE(run_latency);
    service.shutdown(false);
}

TEST(ServeProtocol, StatsReportsVerbLatencies)
{
    SweepService service({1, 16, 0, ""});
    LineProtocol protocol(service);
    std::mutex mu;
    std::vector<std::string> lines;
    const LineProtocol::Write write = [&](const std::string& line) {
        const std::lock_guard<std::mutex> lock(mu);
        lines.push_back(line);
    };

    protocol.handleLine("t", R"({"id":1,"method":"ping"})", write);
    protocol.handleLine("t", R"({"id":2,"method":"ping"})", write);
    protocol.handleLine("t", R"({"id":3,"method":"stats"})", write);
    // The stats verb's own latency lands after its response; a second
    // stats call observes it.
    protocol.handleLine("t", R"({"id":4,"method":"stats"})", write);

    const std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(lines.size(), 4u);
    std::string error;
    const auto doc = parseJson(lines[3], error);
    ASSERT_NE(doc, nullptr) << error;
    const JsonValue* stats = doc->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_NE(stats->find("timeline_dropped"), nullptr);
    const JsonValue* verbs = stats->find("verbs");
    ASSERT_NE(verbs, nullptr);
    const JsonValue* ping = verbs->find("ping");
    ASSERT_NE(ping, nullptr);
    EXPECT_DOUBLE_EQ(ping->number("count", 0.0), 2.0);
    const JsonValue* stats_verb = verbs->find("stats");
    ASSERT_NE(stats_verb, nullptr);
    EXPECT_GE(stats_verb->number("count", 0.0), 1.0);
    service.shutdown(false);
}

TEST(ServeProtocol, JobSpecTimelineFlagFeedsDroppedAccounting)
{
    // The spec's "timeline" flag turns the run's recorder on.
    ServeRequest request;
    std::string error;
    ASSERT_TRUE(parseServeRequest(
        R"({"id":1,"method":"run","params":{"app":"Jacobi",)"
            R"("gpus":2,"scale":0.0625,"timeline":true}})",
        request, error))
        << error;
    ASSERT_EQ(request.jobs.size(), 1u);
    EXPECT_TRUE(request.jobs.front().config.obs.timeline);

    // A run with a one-event cap must overflow, and the dropped count
    // surfaces in the service stats.
    SweepService service({1, 16, 0, ""});
    Collector collected;
    ServeJob job = smokeJob("c", 1);
    job.config.obs.timeline = true;
    job.config.obs.maxTimelineEvents = 1;
    service.submit(std::move(job), collected.callback());
    collected.waitFor(1);
    service.awaitIdle();
    EXPECT_GT(service.stats().timelineDropped, 0u);
    service.shutdown(false);
}

TEST(ServeProtocol, NameParsersMatchCliSpellings)
{
    EXPECT_EQ(interconnectFromName("pcie3"), InterconnectKind::Pcie3);
    EXPECT_EQ(interconnectFromName("nvlink3"),
              InterconnectKind::NvLink3);
    EXPECT_EQ(paradigmFromName("GPS"), ParadigmKind::Gps);
    EXPECT_EQ(paradigmFromName("Infinite"), ParadigmKind::InfiniteBw);
    EXPECT_THROW(interconnectFromName("token-ring"), FatalError);
    EXPECT_THROW(paradigmFromName("magic"), FatalError);
}

// --- Cancellation primitive -------------------------------------------

TEST(CancelToken, FirstReasonWinsAndDeadlineLatches)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throwIfCancelled());
    token.cancel(CancelReason::Cancelled);
    token.cancel(CancelReason::DeadlineExpired); // ignored: first wins
    EXPECT_TRUE(token.cancelled());
    try {
        token.throwIfCancelled();
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::Cancelled);
    }

    CancelToken deadline;
    deadline.setDeadline(std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1));
    EXPECT_EQ(deadline.poll(), CancelReason::DeadlineExpired);
    try {
        deadline.throwIfCancelled();
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::DeadlineExpired);
    }
}

TEST(CancelToken, CancelledRunReportsStructuredError)
{
    // runSweepJob maps a token fired before the run into the
    // structured (type, message) error channel — satellite S1.
    SweepJob job;
    job.workload = "Jacobi";
    job.config.system.numGpus = 2;
    job.config.scale = smokeScale;
    job.config.cancel = std::make_shared<CancelToken>();
    job.config.cancel->cancel(CancelReason::Cancelled);
    const SweepOutcome out = runSweepJob(job);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.errorType, "Cancelled");
    EXPECT_FALSE(out.errorText().empty());
}

} // namespace
} // namespace gps
