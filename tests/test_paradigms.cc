/**
 * @file
 * Integration tests for the baseline paradigms (UM, UM+hints, RDL,
 * memcpy, infinite BW) driven through the Paradigm::access interface.
 */

#include <gtest/gtest.h>

#include "paradigm/memcpy_paradigm.hh"
#include "paradigm/paradigm.hh"

namespace gps
{
namespace
{

class ParadigmHarness
{
  public:
    explicit ParadigmHarness(ParadigmKind kind)
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        paradigm = makeParadigm(kind, *system);
        traffic = std::make_unique<TrafficMatrix>(4);
        // Allocate one shared region the way the runner would.
        switch (paradigm->sharedKind()) {
          case MemKind::Managed:
            region = &system->driver().mallocManaged(64 * KiB, "shared");
            break;
          case MemKind::Replicated:
            region = &system->driver().mallocReplicated(64 * KiB,
                                                        "shared", 0);
            break;
          case MemKind::Gps:
            region = &system->driver().mallocGps(64 * KiB, "shared", 0);
            break;
          case MemKind::Pinned:
            region = &system->driver().malloc(64 * KiB, 0, "shared");
            break;
        }
        paradigm->onSetupComplete();
    }

    void
    access(GpuId gpu, const MemAccess& a)
    {
        const PageNum vpn = system->geometry().pageNum(a.vaddr);
        const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
        paradigm->access(gpu, a, vpn, miss, counters, *traffic);
    }

    Tick
    barrier()
    {
        TrafficMatrix barrier_traffic(4);
        const Tick overhead =
            paradigm->atBarrier(counters, barrier_traffic);
        barrierBytes = barrier_traffic.total();
        return overhead;
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<Paradigm> paradigm;
    std::unique_ptr<TrafficMatrix> traffic;
    const Region* region = nullptr;
    KernelCounters counters;
    std::uint64_t barrierBytes = 0;
};

TEST(ParadigmFactory, BuildsEveryKindWithMatchingIdentity)
{
    SystemConfig config;
    MultiGpuSystem system(config);
    for (const ParadigmKind kind : allParadigms()) {
        auto paradigm = makeParadigm(kind, system);
        EXPECT_EQ(paradigm->kind(), kind) << to_string(kind);
    }
}

TEST(ParadigmFactory, SharedKindsMatchTheEvaluationSetup)
{
    SystemConfig config;
    MultiGpuSystem system(config);
    EXPECT_EQ(makeParadigm(ParadigmKind::Um, system)->sharedKind(),
              MemKind::Managed);
    EXPECT_EQ(makeParadigm(ParadigmKind::UmHints, system)->sharedKind(),
              MemKind::Managed);
    EXPECT_EQ(makeParadigm(ParadigmKind::Rdl, system)->sharedKind(),
              MemKind::Replicated);
    EXPECT_EQ(makeParadigm(ParadigmKind::Memcpy, system)->sharedKind(),
              MemKind::Replicated);
    EXPECT_EQ(makeParadigm(ParadigmKind::Gps, system)->sharedKind(),
              MemKind::Gps);
}

TEST(UmParadigmIntegration, RemoteTouchesFaultAndMigrate)
{
    ParadigmHarness h(ParadigmKind::Um);
    h.access(0, MemAccess::store(h.region->base));
    h.access(1, MemAccess::load(h.region->base));
    EXPECT_GE(h.counters.pageFaults, 2u);
    EXPECT_EQ(h.counters.pageMigrations, 1u);
    EXPECT_GT(h.traffic->total(), 0u);
}

TEST(RdlIntegration, LoadsChaseTheLastWriter)
{
    ParadigmHarness h(ParadigmKind::Rdl);
    h.access(0, MemAccess::store(h.region->base));
    h.access(1, MemAccess::load(h.region->base));
    EXPECT_EQ(h.counters.remoteLoads, 1u);
    EXPECT_EQ(h.counters.pageFaults, 0u);
    // The writer itself reads locally.
    const std::uint64_t remote = h.counters.remoteLoads;
    h.access(0, MemAccess::load(h.region->base));
    EXPECT_EQ(h.counters.remoteLoads, remote);
}

TEST(RdlIntegration, BarrierInvalidatesPeerCachedCopies)
{
    ParadigmHarness h(ParadigmKind::Rdl);
    h.access(0, MemAccess::store(h.region->base));
    h.access(1, MemAccess::load(h.region->base)); // remote, cached
    h.access(1, MemAccess::load(h.region->base)); // L2 hit
    EXPECT_EQ(h.counters.remoteLoads, 1u);
    h.barrier();
    h.access(0, MemAccess::store(h.region->base));
    h.barrier();
    h.access(1, MemAccess::load(h.region->base)); // stale: refetch
    EXPECT_EQ(h.counters.remoteLoads, 2u);
}

TEST(RdlIntegration, RemoteAtomicsRouteToCanonicalCopy)
{
    ParadigmHarness h(ParadigmKind::Rdl);
    h.access(0, MemAccess::store(h.region->base));
    h.access(1, MemAccess::atomic(h.region->base));
    EXPECT_EQ(h.counters.remoteAtomics, 1u);
}

TEST(MemcpyIntegration, KernelsRunFullyLocal)
{
    ParadigmHarness h(ParadigmKind::Memcpy);
    h.access(0, MemAccess::store(h.region->base));
    h.access(1, MemAccess::load(h.region->base));
    h.access(2, MemAccess::atomic(h.region->base));
    EXPECT_EQ(h.traffic->total(), 0u);
    EXPECT_EQ(h.counters.remoteLoads, 0u);
}

TEST(MemcpyIntegration, BarrierBroadcastsDirtyPagesFromWriter)
{
    ParadigmHarness h(ParadigmKind::Memcpy);
    h.access(2, MemAccess::store(h.region->base));
    const Tick overhead = h.barrier();
    EXPECT_GT(overhead, 0u);
    // One dirty page to three peers.
    EXPECT_EQ(h.barrierBytes,
              3 * (64 * KiB + h.system->topology().spec().headerBytes));
    // A second barrier with no new writes broadcasts nothing.
    h.barrier();
    EXPECT_EQ(h.barrierBytes, 0u);
}

TEST(MemcpyIntegration, DeclaredBroadcastRangesOverrideDirtyTracking)
{
    ParadigmHarness h(ParadigmKind::Memcpy);
    Phase phase;
    phase.barrierBroadcasts.push_back(
        BroadcastRange{1, h.region->base, 8 * KiB});
    KernelCounters scratch;
    TrafficMatrix t(4);
    h.paradigm->beginPhase(phase, scratch, t);
    h.access(0, MemAccess::store(h.region->base)); // would dirty a page
    h.barrier();
    EXPECT_EQ(h.barrierBytes,
              3 * (8 * KiB + h.system->topology().spec().headerBytes));
}

TEST(InfiniteIntegration, TransfersAreFree)
{
    ParadigmHarness h(ParadigmKind::InfiniteBw);
    h.access(0, MemAccess::store(h.region->base));
    const Tick overhead = h.barrier();
    EXPECT_EQ(overhead, 0u);
    EXPECT_EQ(h.barrierBytes, 0u);
    EXPECT_EQ(h.traffic->total(), 0u);
}

TEST(PinnedPages, RouteIdenticallyUnderEveryParadigm)
{
    for (const ParadigmKind kind : allParadigms()) {
        ParadigmHarness h(kind);
        const Region& priv =
            h.system->driver().malloc(64 * KiB, 2, "private");
        // Owner access is local under every paradigm.
        h.access(2, MemAccess::load(priv.base));
        EXPECT_EQ(h.counters.remoteLoads, 0u) << to_string(kind);
        // A peer load is a conventional remote access.
        h.access(0, MemAccess::load(priv.base));
        EXPECT_EQ(h.counters.remoteLoads, 1u) << to_string(kind);
    }
}

TEST(ParadigmNames, AreStable)
{
    EXPECT_EQ(to_string(ParadigmKind::Um), "UM");
    EXPECT_EQ(to_string(ParadigmKind::UmHints), "UM+hints");
    EXPECT_EQ(to_string(ParadigmKind::Rdl), "RDL");
    EXPECT_EQ(to_string(ParadigmKind::Memcpy), "Memcpy");
    EXPECT_EQ(to_string(ParadigmKind::Gps), "GPS");
    EXPECT_EQ(to_string(ParadigmKind::InfiniteBw), "Infinite BW");
    EXPECT_EQ(allParadigms().size(), 6u);
}

} // namespace
} // namespace gps
