/**
 * @file
 * Tests for the log2 histogram: bucket edges, merge algebra, percentile
 * monotonicity and interpolation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/histogram.hh"

namespace gps
{
namespace
{

constexpr std::uint64_t kMaxU64 = ~std::uint64_t{0};

TEST(LogHistogram, BucketEdges)
{
    EXPECT_EQ(LogHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LogHistogram::bucketOf(1), 1u);
    EXPECT_EQ(LogHistogram::bucketOf(2), 2u);
    EXPECT_EQ(LogHistogram::bucketOf(3), 2u);
    EXPECT_EQ(LogHistogram::bucketOf(4), 3u);
    EXPECT_EQ(LogHistogram::bucketOf(7), 3u);
    EXPECT_EQ(LogHistogram::bucketOf(8), 4u);
    EXPECT_EQ(LogHistogram::bucketOf(std::uint64_t{1} << 63), 64u);
    EXPECT_EQ(LogHistogram::bucketOf(kMaxU64), 64u);

    // Bucket [low, high] ranges tile the uint64 domain with no gaps.
    EXPECT_EQ(LogHistogram::bucketLow(0), 0u);
    EXPECT_EQ(LogHistogram::bucketHigh(0), 0u);
    for (std::size_t b = 1; b < LogHistogram::numBuckets; ++b) {
        EXPECT_EQ(LogHistogram::bucketLow(b),
                  LogHistogram::bucketHigh(b - 1) + 1)
            << b;
        EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketLow(b)), b);
        EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketHigh(b)), b);
    }
    EXPECT_EQ(LogHistogram::bucketHigh(64), kMaxU64);
}

TEST(LogHistogram, RecordTracksMoments)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.min(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);

    for (const std::uint64_t v : {5u, 0u, 17u, 5u})
        h.record(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 27u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 17u);
    EXPECT_DOUBLE_EQ(h.mean(), 27.0 / 4.0);
    EXPECT_EQ(h.buckets()[0], 1u);                       // the 0
    EXPECT_EQ(h.buckets()[LogHistogram::bucketOf(5)], 2u);
    EXPECT_EQ(h.buckets()[LogHistogram::bucketOf(17)], 1u);
}

TEST(LogHistogram, MergeIsAssociativeAndOrderIndependent)
{
    const std::vector<std::uint64_t> samples = {0,  1,  1,   3,  64,
                                                65, 100, 4096, kMaxU64};
    // Split the samples three ways, merge in two different orders, and
    // compare against recording everything into one histogram.
    LogHistogram a, b, c, serial;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(samples[i]);
        serial.record(samples[i]);
    }
    LogHistogram ab = a;
    ab.merge(b);
    LogHistogram ab_c = ab;
    ab_c.merge(c);

    LogHistogram bc = b;
    bc.merge(c);
    LogHistogram a_bc = a;
    a_bc.merge(bc);

    for (const LogHistogram* m : {&ab_c, &a_bc}) {
        EXPECT_EQ(m->buckets(), serial.buckets());
        EXPECT_EQ(m->count(), serial.count());
        EXPECT_EQ(m->sum(), serial.sum());
        EXPECT_EQ(m->min(), serial.min());
        EXPECT_EQ(m->max(), serial.max());
        EXPECT_DOUBLE_EQ(m->percentile(0.5), serial.percentile(0.5));
        EXPECT_DOUBLE_EQ(m->percentile(0.99), serial.percentile(0.99));
    }
}

TEST(LogHistogram, MergeWithEmptyKeepsMinMax)
{
    LogHistogram h, empty;
    h.record(7);
    h.merge(empty);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 7u);

    LogHistogram other = empty;
    other.merge(h);
    EXPECT_EQ(other.min(), 7u);
    EXPECT_EQ(other.max(), 7u);
}

TEST(LogHistogram, PercentilesAreMonotoneAndClamped)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
    double prev = -1.0;
    for (double p = 0.0; p <= 1.0; p += 0.01) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev) << p;
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 1000.0);
        prev = v;
    }
    // The median of 1..1000 should land inside its bucket, in the
    // right ballpark (log buckets are coarse, not exact).
    const double p50 = h.percentile(0.5);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1000.0);
}

TEST(LogHistogram, SingleSamplePercentileIsExact)
{
    LogHistogram h;
    h.record(42);
    for (const double p : {0.0, 0.5, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 42.0) << p;
}

TEST(LogHistogram, ExtremeValuesDoNotOverflow)
{
    LogHistogram h;
    h.record(kMaxU64);
    h.record(kMaxU64 - 1);
    EXPECT_EQ(h.buckets()[64], 2u);
    EXPECT_EQ(h.max(), kMaxU64);
    EXPECT_GE(h.percentile(0.5), static_cast<double>(kMaxU64 - 1));
}

} // namespace
} // namespace gps
