/**
 * @file
 * Unit tests for the subscription manager: the subscription algebra of
 * Sections 3.2 and 4 (subscribe backs a replica, unsubscribe frees it,
 * the last subscriber is never removed, the GPS bit tracks
 * multi-subscriber state, oversubscription degrades gracefully).
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "core/gps_page_table.hh"
#include "core/gps_paradigm.hh"
#include "core/subscription.hh"

namespace gps
{
namespace
{

class SubscriptionTest : public ::testing::Test
{
  protected:
    SubscriptionTest()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        table = std::make_unique<GpsPageTable>();
        subs = std::make_unique<SubscriptionManager>(system->driver(),
                                                     *table);
        region = &system->driver().mallocGps(2 * 64 * KiB, "gps", 0);
        vpn = system->geometry().pageNum(region->base);
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<GpsPageTable> table;
    std::unique_ptr<SubscriptionManager> subs;
    const Region* region = nullptr;
    PageNum vpn = 0;
};

TEST_F(SubscriptionTest, SubscribeBacksReplicaFrame)
{
    EXPECT_EQ(subs->subscribe(vpn, 1), SubscribeResult::Ok);
    EXPECT_TRUE(subs->isSubscriber(vpn, 1));
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 1u);
    EXPECT_TRUE(table->lookup(vpn)->hasSubscriber(1));
}

TEST_F(SubscriptionTest, ResubscribeReportsAlready)
{
    subs->subscribe(vpn, 1);
    EXPECT_EQ(subs->subscribe(vpn, 1),
              SubscribeResult::AlreadySubscribed);
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 1u);
}

TEST_F(SubscriptionTest, GpsBitSetsAtTwoSubscribers)
{
    EXPECT_FALSE(system->driver().state(vpn).gpsBitSet);
    subs->subscribe(vpn, 1);
    EXPECT_TRUE(system->driver().state(vpn).gpsBitSet);
    EXPECT_TRUE(system->driver().pageTable(0).lookup(vpn)->gpsBit);
    EXPECT_TRUE(system->driver().pageTable(1).lookup(vpn)->gpsBit);
}

TEST_F(SubscriptionTest, UnsubscribeFreesReplicaAndDemotes)
{
    subs->subscribe(vpn, 1);
    EXPECT_EQ(subs->unsubscribe(vpn, 1), UnsubscribeResult::Ok);
    EXPECT_FALSE(subs->isSubscriber(vpn, 1));
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 0u);
    // Back to a single subscriber: GPS bit cleared (demoted).
    EXPECT_FALSE(system->driver().state(vpn).gpsBitSet);
}

TEST_F(SubscriptionTest, LastSubscriberIsRefused)
{
    // Section 4: GPS returns an error on attempts to unsubscribe the
    // last subscriber, leaving the allocation in place.
    EXPECT_EQ(subs->unsubscribe(vpn, 0),
              UnsubscribeResult::LastSubscriber);
    EXPECT_TRUE(subs->isSubscriber(vpn, 0));
    EXPECT_EQ(system->gpu(0).memory().framesInUse(), 2u);
}

TEST_F(SubscriptionTest, UnsubscribeNonSubscriberReports)
{
    EXPECT_EQ(subs->unsubscribe(vpn, 3),
              UnsubscribeResult::NotSubscribed);
}

TEST_F(SubscriptionTest, LocationFollowsWhenOwnerUnsubscribes)
{
    subs->subscribe(vpn, 2);
    EXPECT_EQ(subs->unsubscribe(vpn, 0), UnsubscribeResult::Ok);
    EXPECT_EQ(system->driver().state(vpn).location, 2);
}

TEST_F(SubscriptionTest, SubscribeAllCoversRegionAndGpus)
{
    subs->subscribeAll(*region);
    system->driver().forEachPage(*region, [&](PageNum p) {
        EXPECT_EQ(subs->subscribers(p), maskAll(4));
    });
    // 2 pages x 4 GPUs replicas in total.
    std::uint64_t frames = 0;
    for (GpuId g = 0; g < 4; ++g)
        frames += system->gpu(g).memory().framesInUse();
    EXPECT_EQ(frames, 8u);
}

TEST_F(SubscriptionTest, RangeApisCoverPartialRegions)
{
    subs->subscribeRange(region->base + 64 * KiB, 64 * KiB, 3);
    EXPECT_FALSE(subs->isSubscriber(vpn, 3));
    EXPECT_TRUE(subs->isSubscriber(vpn + 1, 3));
    EXPECT_EQ(subs->unsubscribeRange(region->base + 64 * KiB, 64 * KiB,
                                     3),
              UnsubscribeResult::Ok);
    EXPECT_FALSE(subs->isSubscriber(vpn + 1, 3));
}

TEST_F(SubscriptionTest, CollapseLeavesOneConventionalCopy)
{
    subs->subscribeAll(*region);
    KernelCounters counters;
    subs->collapse(vpn, 2, counters);
    const PageState& st = system->driver().state(vpn);
    EXPECT_EQ(st.subscribers, gpuBit(2));
    EXPECT_TRUE(st.collapsed);
    EXPECT_FALSE(st.gpsBitSet);
    EXPECT_EQ(st.location, 2);
}

TEST_F(SubscriptionTest, HistogramCountsMultiSubscriberPagesOnly)
{
    subs->subscribe(vpn, 1);          // page 0: 2 subscribers
    // page 1 stays single-subscriber and must not appear.
    Histogram hist(8);
    subs->fillHistogram(hist);
    EXPECT_EQ(hist.total(), 1u);
    EXPECT_EQ(hist.bucket(2), 1u);
}

TEST_F(SubscriptionTest, OversubscriptionRejectsGracefully)
{
    SystemConfig tiny;
    tiny.numGpus = 2;
    tiny.gpu.globalMemoryBytes = 2 * 64 * KiB;
    MultiGpuSystem small(tiny);
    GpsPageTable small_table;
    SubscriptionManager small_subs(small.driver(), small_table);
    // Fill GPU1 completely with pinned data.
    small.driver().malloc(2 * 64 * KiB, 1, "fill");
    const Region& gps_region =
        small.driver().mallocGps(64 * KiB, "gps", 0);
    const PageNum p = small.geometry().pageNum(gps_region.base);
    // GPU1 has no frames left: the subscribe is refused, the GPU simply
    // stays unsubscribed and will access remotely (Section 5.3).
    EXPECT_EQ(small_subs.subscribe(p, 1), SubscribeResult::OutOfMemory);
    EXPECT_FALSE(small_subs.isSubscriber(p, 1));
}

TEST_F(SubscriptionTest, ReclaimHookSwapsOutReplicasUnderPressure)
{
    // Section 5.3: when the driver must swap out a page from a
    // subscriber due to oversubscription, that GPU is unsubscribed and
    // accesses the page remotely.
    SystemConfig tiny;
    tiny.numGpus = 2;
    tiny.gpu.globalMemoryBytes = 3 * 64 * KiB; // three frames per GPU
    MultiGpuSystem small(tiny);
    GpsPageTable small_table;
    SubscriptionManager small_subs(small.driver(), small_table);
    small_subs.installReclaimHook();

    // Two GPS pages fully subscribed: GPU1 holds 2 replica frames.
    const Region& gps_region =
        small.driver().mallocGps(2 * 64 * KiB, "gps", 0);
    small_subs.subscribeAll(gps_region);
    EXPECT_EQ(small.gpu(1).memory().framesInUse(), 2u);

    // A pinned allocation on GPU1 needs 2 frames but only 1 is free:
    // the driver swaps out one of GPU1's replicas to make room.
    const Region& pinned = small.driver().malloc(2 * 64 * KiB, 1, "p");
    (void)pinned;
    EXPECT_EQ(small.driver().reclaims(), 1u);
    // GPU1 lost exactly one subscription; GPU0 keeps both pages.
    std::size_t gpu1_subs = 0;
    small.driver().forEachPage(gps_region, [&](PageNum vpn) {
        if (small_subs.isSubscriber(vpn, 1))
            ++gpu1_subs;
        EXPECT_TRUE(small_subs.isSubscriber(vpn, 0));
    });
    EXPECT_EQ(gpu1_subs, 1u);
}

TEST_F(SubscriptionTest, SwapOutRefusesWhenOnlyLastCopiesRemain)
{
    // Single-subscriber pages are never swapped out.
    EXPECT_FALSE(subs->swapOutOneReplica(0));
}

TEST_F(SubscriptionTest, RetireReplicaUnsubscribesAndRemovesTheFrame)
{
    subs->subscribe(vpn, 1);
    EXPECT_TRUE(subs->retireReplica(vpn, 1));
    EXPECT_FALSE(subs->isSubscriber(vpn, 1));
    EXPECT_EQ(system->gpu(1).memory().framesInUse(), 0u);
    // The frame is retired, not returned to the free list.
    EXPECT_EQ(system->gpu(1).memory().framesRetired(), 1u);
    EXPECT_EQ(subs->replicaRetires(), 1u);
}

TEST_F(SubscriptionTest, RetireReplicaRefusesTheLastCopy)
{
    // Only GPU0 holds the page: retiring it would lose the data.
    EXPECT_FALSE(subs->retireReplica(vpn, 0));
    EXPECT_TRUE(subs->isSubscriber(vpn, 0));
    EXPECT_EQ(subs->replicaRetires(), 0u);
}

TEST_F(SubscriptionTest, RetireReplicaRefusesNonSubscribers)
{
    EXPECT_FALSE(subs->retireReplica(vpn, 3));
}

TEST_F(SubscriptionTest, OversubscribedGpuFallsBackToRemoteAccess)
{
    // Section 5.3 end to end under the GPS paradigm: a GPU that cannot
    // hold a replica still accesses the page, remotely, and recovers
    // nothing locally until frames free up.
    SystemConfig tiny;
    tiny.numGpus = 2;
    tiny.gpu.globalMemoryBytes = 2 * 64 * KiB;
    MultiGpuSystem small(tiny);
    GpsPageTable small_table;
    SubscriptionManager small_subs(small.driver(), small_table);
    small.driver().malloc(2 * 64 * KiB, 1, "fill");
    const Region& gps_region =
        small.driver().mallocGps(64 * KiB, "gps", 0);
    const PageNum p = small.geometry().pageNum(gps_region.base);
    ASSERT_EQ(small_subs.subscribe(p, 1), SubscribeResult::OutOfMemory);

    // GPU1 loads through the paradigm: the access is served remotely.
    GpsParadigm paradigm(small);
    KernelCounters counters;
    TrafficMatrix traffic(2);
    const MemAccess load = MemAccess::load(gps_region.base);
    const bool miss = small.gpu(1).tlbAccess(p, counters);
    paradigm.access(1, load, p, miss, counters, traffic);
    EXPECT_EQ(counters.remoteLoads, 1u);
    EXPECT_GT(traffic.total(), 0u);
}

TEST_F(SubscriptionTest, StatsCountOperations)
{
    subs->subscribe(vpn, 1);
    subs->subscribe(vpn, 2);
    subs->unsubscribe(vpn, 1);
    StatSet stats;
    subs->exportStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("subscription_manager.subscribe_ops"),
                     2.0);
    EXPECT_DOUBLE_EQ(stats.get("subscription_manager.unsubscribe_ops"),
                     1.0);
}

} // namespace
} // namespace gps
