/**
 * @file
 * Randomized invariant tests: drive the GPS paradigm (and the driver
 * underneath) with long random operation sequences and check that the
 * structural invariants hold at every step.
 *
 * Invariants checked:
 *  - every GPS page keeps at least one subscriber,
 *  - the subscriber mask, the GPS page table and the per-GPU frame
 *    accounting stay mutually consistent,
 *  - the conventional PTE GPS bit == (page has >= 2 subscribers and is
 *    not collapsed),
 *  - the write queue occupancy never exceeds its watermark,
 *  - frames never leak (frees return the allocator to its baseline).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/gps_paradigm.hh"

namespace gps
{
namespace
{

class GpsFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    GpsFuzz()
    {
        SystemConfig config;
        config.numGpus = 4;
        config.gps.wqEntries = 32; // small queue: exercise drains
        system = std::make_unique<MultiGpuSystem>(config);
        paradigm = std::make_unique<GpsParadigm>(*system);
        traffic = std::make_unique<TrafficMatrix>(4);
        region = &system->driver().mallocGps(8 * 64 * KiB, "fuzz", 0);
        paradigm->onSetupComplete();
        firstVpn = system->geometry().pageNum(region->base);
        pages = system->geometry().pagesSpanned(region->base,
                                                region->size);
    }

    void
    checkInvariants()
    {
        std::vector<std::uint64_t> expected_frames(4, 0);
        for (PageNum vpn = firstVpn; vpn < firstVpn + pages; ++vpn) {
            const PageState& st = system->driver().state(vpn);
            // At least one subscriber, always.
            ASSERT_GE(maskCount(st.subscribers), 1u) << "vpn " << vpn;
            // Subscribers hold frames; frames follow subscribers.
            ASSERT_EQ(st.backed, st.subscribers) << "vpn " << vpn;
            maskForEach(st.subscribers, [&](GpuId g) {
                const Pte* pte =
                    system->driver().pageTable(g).lookup(vpn);
                ASSERT_NE(pte, nullptr);
                ASSERT_EQ(pte->location, g);
                ASSERT_TRUE(
                    system->gpu(g).memory().allocated(pte->ppn));
                ++expected_frames[g];
            });
            // GPS bit tracks multi-subscriber, non-collapsed state.
            const bool expect_bit =
                maskCount(st.subscribers) >= 2 && !st.collapsed;
            ASSERT_EQ(st.gpsBitSet, expect_bit) << "vpn " << vpn;
        }
        for (GpuId g = 0; g < 4; ++g) {
            ASSERT_EQ(system->gpu(g).memory().framesInUse(),
                      expected_frames[g])
                << "gpu " << g;
        }
        for (GpuId g = 0; g < 4; ++g) {
            ASSERT_LE(paradigm->writeQueue(g).occupancy(),
                      system->config().gps.highWatermark());
        }
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<GpsParadigm> paradigm;
    std::unique_ptr<TrafficMatrix> traffic;
    const Region* region = nullptr;
    PageNum firstVpn = 0;
    std::uint64_t pages = 0;
    KernelCounters counters;
};

TEST_P(GpsFuzz, InvariantsSurviveRandomOperationSequences)
{
    Rng rng(GetParam());
    for (int step = 0; step < 4000; ++step) {
        const GpuId gpu = static_cast<GpuId>(rng.below(4));
        const Addr addr =
            region->base + rng.below(region->size) / 4 * 4;
        const PageNum vpn = system->geometry().pageNum(addr);
        const std::uint64_t op = rng.below(100);
        if (op < 40) {
            const MemAccess a = MemAccess::load(addr, 4);
            const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
            paradigm->access(gpu, a, vpn, miss, counters, *traffic);
        } else if (op < 80) {
            const MemAccess a = MemAccess::store(addr, 4);
            const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
            paradigm->access(gpu, a, vpn, miss, counters, *traffic);
        } else if (op < 86) {
            const MemAccess a = MemAccess::atomic(addr, 4);
            const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
            paradigm->access(gpu, a, vpn, miss, counters, *traffic);
        } else if (op < 88) {
            const MemAccess a = MemAccess::sysStore(addr, 4);
            const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
            paradigm->access(gpu, a, vpn, miss, counters, *traffic);
        } else if (op < 93) {
            if (!system->driver().state(vpn).collapsed)
                paradigm->subscriptions().subscribe(vpn, gpu);
        } else if (op < 98) {
            if (!system->driver().state(vpn).collapsed)
                paradigm->subscriptions().unsubscribe(vpn, gpu,
                                                      &counters);
        } else {
            paradigm->endKernel(gpu, counters, *traffic);
        }
        if (step % 200 == 0)
            checkInvariants();
    }
    for (GpuId g = 0; g < 4; ++g)
        paradigm->endKernel(g, counters, *traffic);
    checkInvariants();
    for (GpuId g = 0; g < 4; ++g)
        EXPECT_EQ(paradigm->writeQueue(g).occupancy(), 0u);
}

TEST_P(GpsFuzz, TrackingCycleAlwaysLeavesAValidSubscriptionState)
{
    Rng rng(GetParam() ^ 0xabcdef);
    paradigm->trackingStart();
    for (int step = 0; step < 1500; ++step) {
        const GpuId gpu = static_cast<GpuId>(rng.below(4));
        const Addr addr = region->base + rng.below(region->size);
        const PageNum vpn = system->geometry().pageNum(addr);
        const MemAccess a = rng.chance(0.5)
                                ? MemAccess::load(addr, 4)
                                : MemAccess::store(addr, 4);
        const bool miss = system->gpu(gpu).tlbAccess(vpn, counters);
        paradigm->access(gpu, a, vpn, miss, counters, *traffic);
    }
    for (GpuId g = 0; g < 4; ++g)
        paradigm->endKernel(g, counters, *traffic);
    paradigm->trackingStop(counters);
    checkInvariants();
    // Post-profiling, a GPU is subscribed only where it (TLB-)touched,
    // except the guaranteed last subscriber.
    for (PageNum vpn = firstVpn; vpn < firstVpn + pages; ++vpn) {
        const GpuMask subs = paradigm->subscriptions().subscribers(vpn);
        const GpuMask touched = paradigm->tracker().touchedMask(vpn);
        // tracker was cleared at stop; recompute via subscription
        // count: every multi-subscriber page must have been touched by
        // each of its subscribers, which we can't re-check here, so
        // just require validity:
        ASSERT_GE(maskCount(subs), 1u);
        (void)touched;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpsFuzz,
                         ::testing::Values(1, 7, 1337, 0xdeadbeef));

} // namespace
} // namespace gps
