/**
 * @file
 * Unit and property tests for the set-associative write-back cache.
 */

#include <gtest/gtest.h>

#include "cache/cache_model.hh"
#include "common/units.hh"

namespace gps
{
namespace
{

CacheModel
makeCache(std::uint64_t capacity = 16 * KiB, std::uint32_t ways = 4)
{
    return CacheModel("l2", capacity, 128, ways);
}

TEST(CacheModel, ColdMissThenHit)
{
    auto cache = makeCache();
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheModel, SameLineDifferentOffsetHits)
{
    auto cache = makeCache();
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.access(0x107F, false).hit);
    EXPECT_FALSE(cache.access(0x1080, false).hit);
}

TEST(CacheModel, CleanEvictionHasNoWriteback)
{
    auto cache = makeCache(1024, 1); // 8 sets, direct mapped
    cache.access(0, false);
    // Same set, different tag: evicts the clean line.
    const CacheResult result = cache.access(1024, false);
    EXPECT_FALSE(result.hit);
    EXPECT_EQ(result.writebackBytes, 0u);
}

TEST(CacheModel, DirtyEvictionWritesBack)
{
    auto cache = makeCache(1024, 1);
    cache.access(0, true); // dirty
    const CacheResult result = cache.access(1024, false);
    EXPECT_EQ(result.writebackBytes, 128u);
}

TEST(CacheModel, ReadAfterWriteKeepsDirtyUntilEviction)
{
    auto cache = makeCache(1024, 1);
    cache.access(0, true);
    cache.access(0, false); // read hit must not clean the line
    EXPECT_EQ(cache.access(1024, false).writebackBytes, 128u);
}

TEST(CacheModel, LruKeepsRecentlyUsedWay)
{
    auto cache = makeCache(2 * 128, 2); // one set, two ways
    cache.access(0, false);
    cache.access(128, false);
    cache.access(0, false);      // refresh way holding line 0
    cache.access(256, false);    // evicts line 128
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(128));
}

TEST(CacheModel, InvalidatePageDropsAllItsLines)
{
    auto cache = makeCache(64 * KiB, 8);
    for (Addr a = 0; a < 4096; a += 128)
        cache.access(a, true);
    const std::uint64_t wb = cache.invalidatePage(0, 4096);
    EXPECT_EQ(wb, 4096u);
    for (Addr a = 0; a < 4096; a += 128)
        EXPECT_FALSE(cache.contains(a));
}

TEST(CacheModel, InvalidatePageLeavesOtherPages)
{
    auto cache = makeCache(64 * KiB, 8);
    cache.access(0, false);
    cache.access(8192, false);
    cache.invalidatePage(0, 4096);
    EXPECT_TRUE(cache.contains(8192));
}

TEST(CacheModel, FlushAllReportsDirtyBytes)
{
    auto cache = makeCache();
    cache.access(0, true);
    cache.access(128, false);
    cache.access(256, true);
    EXPECT_EQ(cache.flushAll(), 256u);
    EXPECT_FALSE(cache.contains(0));
}

TEST(CacheModel, HitRateMath)
{
    auto cache = makeCache();
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(128, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

/** Property: working sets within capacity re-access at 100% hits. */
class CacheCapacity
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint32_t>>
{};

TEST_P(CacheCapacity, SequentialWorkingSetWithinCapacityAllHits)
{
    const auto [capacity, ways] = GetParam();
    CacheModel cache("c", capacity, 128, ways);
    for (Addr a = 0; a < capacity; a += 128)
        cache.access(a, false);
    cache.resetStats();
    for (Addr a = 0; a < capacity; a += 128)
        ASSERT_TRUE(cache.access(a, false).hit) << "addr " << a;
}

TEST_P(CacheCapacity, DoubleCapacityStreamEvicts)
{
    const auto [capacity, ways] = GetParam();
    CacheModel cache("c", capacity, 128, ways);
    for (Addr a = 0; a < 2 * capacity; a += 128)
        cache.access(a, false);
    cache.resetStats();
    std::uint64_t hits = 0;
    for (Addr a = 0; a < 2 * capacity; a += 128)
        hits += cache.access(a, false).hit ? 1 : 0;
    EXPECT_LT(hits, 2 * capacity / 128);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheCapacity,
    ::testing::Values(std::make_pair(std::uint64_t(16 * KiB), 4u),
                      std::make_pair(std::uint64_t(64 * KiB), 16u),
                      std::make_pair(std::uint64_t(6 * MiB), 16u)));

TEST(CacheModel, Table1L2Configuration)
{
    // 6 MB, 128 B lines, 16 ways: the V100 L2 of Table 1 constructs.
    CacheModel l2("l2", 6 * MiB, 128, 16);
    EXPECT_EQ(l2.capacityBytes(), 6 * MiB);
    EXPECT_EQ(l2.lineBytes(), 128u);
}

} // namespace
} // namespace gps
