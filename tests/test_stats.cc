/**
 * @file
 * Unit tests for the statistics containers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace gps
{
namespace
{

TEST(StatSet, MissingStatReadsAsZero)
{
    StatSet stats;
    EXPECT_DOUBLE_EQ(stats.get("nope"), 0.0);
    EXPECT_FALSE(stats.has("nope"));
}

TEST(StatSet, AddAccumulates)
{
    StatSet stats;
    stats.add("x", 1.5);
    stats.add("x", 2.5);
    EXPECT_DOUBLE_EQ(stats.get("x"), 4.0);
    EXPECT_TRUE(stats.has("x"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet stats;
    stats.add("x", 10.0);
    stats.set("x", 3.0);
    EXPECT_DOUBLE_EQ(stats.get("x"), 3.0);
}

TEST(StatSet, MergeSumsMatchingNames)
{
    StatSet a, b;
    a.add("x", 1.0);
    a.add("y", 2.0);
    b.add("x", 10.0);
    b.add("z", 5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 11.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 5.0);
}

TEST(StatSet, DumpContainsPrefixAndNames)
{
    StatSet stats;
    stats.set("alpha", 1.0);
    const std::string dump = stats.dump("pre.");
    EXPECT_NE(dump.find("pre.alpha = 1"), std::string::npos);
}

TEST(Histogram, SamplesLandInBuckets)
{
    Histogram hist(5);
    hist.sample(2);
    hist.sample(2, 3);
    hist.sample(4);
    EXPECT_EQ(hist.bucket(2), 4u);
    EXPECT_EQ(hist.bucket(4), 1u);
    EXPECT_EQ(hist.total(), 5u);
}

TEST(Histogram, OutOfRangeClampsToLastBucket)
{
    Histogram hist(3);
    hist.sample(99);
    EXPECT_EQ(hist.bucket(2), 1u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram hist(4);
    hist.sample(0, 1);
    hist.sample(1, 3);
    double sum = 0.0;
    for (std::size_t b = 0; b < hist.size(); ++b)
        sum += hist.fraction(b);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram hist(4);
    EXPECT_DOUBLE_EQ(hist.fraction(1), 0.0);
}

TEST(Histogram, ClearResets)
{
    Histogram hist(4);
    hist.sample(1);
    hist.clear();
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_EQ(hist.bucket(1), 0u);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, SkipsNonPositiveValues)
{
    // A failed run's 0x entry must not drag the mean to 0 (log(0) is
    // -inf and would previously poison the whole table cell).
    std::size_t dropped = 0;
    EXPECT_NEAR(geomean({2.0, 8.0, 0.0}, &dropped), 4.0, 1e-12);
    EXPECT_EQ(dropped, 1u);
    EXPECT_NEAR(geomean({-1.0, 3.0, 3.0, 3.0}, &dropped), 3.0, 1e-12);
    EXPECT_EQ(dropped, 1u);
    const double nan = std::nan("");
    EXPECT_NEAR(geomean({nan, 2.0, 8.0}, &dropped), 4.0, 1e-12);
    EXPECT_EQ(dropped, 1u);
}

TEST(Geomean, AllNonPositiveIsZero)
{
    std::size_t dropped = 0;
    EXPECT_DOUBLE_EQ(geomean({0.0, -2.0}, &dropped), 0.0);
    EXPECT_EQ(dropped, 2u);
}

} // namespace
} // namespace gps
