/**
 * @file
 * Checkpoint/restore tests: byte-identical resume for every bundled
 * workload, corrupt/truncated snapshot rejection (never half-restored),
 * restore-verification catching injected state divergence, warm-started
 * sweeps matching cold sweeps byte-for-byte, and the validated numeric
 * parsers the snapshot CLI and cache knobs share.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "api/sweep.hh"
#include "common/env.hh"
#include "snapshot/snapshot.hh"

namespace gps
{
namespace
{

constexpr double smokeScale = 0.0625;

RunConfig
smokeConfig(ParadigmKind paradigm = ParadigmKind::Gps,
            std::size_t gpus = 4)
{
    RunConfig config;
    config.system.numGpus = gpus;
    config.scale = smokeScale;
    config.paradigm = paradigm;
    return config;
}

std::string
runJson(const std::string& app, const RunConfig& config)
{
    return resultToJson(runWorkload(app, config), /*include_stats=*/true);
}

/** Capture a snapshot in memory at @p at and return (bytes, cold JSON). */
std::pair<std::shared_ptr<std::string>, std::string>
captureAt(const std::string& app, const RunConfig& base,
          snapshot::SnapshotPoint at)
{
    RunConfig config = base;
    config.snapshotAt = at;
    config.snapshotSink = std::make_shared<std::string>();
    const std::string json = runJson(app, config);
    return {config.snapshotSink, json};
}

std::string
restoreJson(const std::string& app, const RunConfig& base,
            std::shared_ptr<const std::string> blob)
{
    RunConfig config = base;
    config.restoreBlob = std::move(blob);
    return runJson(app, config);
}

/** Scratch snapshot file path, removed on destruction. */
class TempFile
{
  public:
    TempFile()
    {
        char tmpl[] = "/tmp/gps_snapshot_test_XXXXXX";
        const int fd = ::mkstemp(tmpl);
        if (fd >= 0)
            ::close(fd);
        path_ = tmpl;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

// ---------------------------------------------------------------------
// Point-spec parsing.
// ---------------------------------------------------------------------

TEST(SnapshotPoint, ParsesEverySpelling)
{
    snapshot::SnapshotPoint p;
    EXPECT_TRUE(snapshot::parseSnapshotPoint("profile", p));
    EXPECT_EQ(p.kind, snapshot::AtKind::Profile);

    EXPECT_TRUE(snapshot::parseSnapshotPoint("iter:3", p));
    EXPECT_EQ(p.kind, snapshot::AtKind::Iter);
    EXPECT_EQ(p.n, 3u);

    EXPECT_TRUE(snapshot::parseSnapshotPoint("phase:12", p));
    EXPECT_EQ(p.kind, snapshot::AtKind::Phase);
    EXPECT_EQ(p.n, 12u);

    EXPECT_EQ(snapshot::to_string(p), "phase:12");
}

TEST(SnapshotPoint, RejectsMalformedSpecs)
{
    snapshot::SnapshotPoint p;
    for (const char* bad :
         {"", "iter", "iter:", "iter:0", "iter:-1", "iter:1x",
          "phase:0", "phase:abc", "profiles", "PHASE:1",
          "iter:99999999999999999999"})
        EXPECT_FALSE(snapshot::parseSnapshotPoint(bad, p)) << bad;
    // A failed parse leaves the output untouched.
    p = {snapshot::AtKind::Iter, 7};
    EXPECT_FALSE(snapshot::parseSnapshotPoint("garbage", p));
    EXPECT_EQ(p.kind, snapshot::AtKind::Iter);
    EXPECT_EQ(p.n, 7u);
}

// ---------------------------------------------------------------------
// Round-trip byte-identity.
// ---------------------------------------------------------------------

class SnapshotRoundTrip : public ::testing::TestWithParam<std::string>
{};

TEST_P(SnapshotRoundTrip, ProfileRestoreIsByteIdentical)
{
    const std::string app = GetParam();
    const RunConfig base = smokeConfig();
    const std::string cold = runJson(app, base);

    const auto [blob, capture_json] =
        captureAt(app, base, {snapshot::AtKind::Profile, 0});
    // Capturing must not perturb the capturing run either.
    EXPECT_EQ(capture_json, cold) << app;
    ASSERT_FALSE(blob->empty()) << app;

    EXPECT_EQ(restoreJson(app, base, blob), cold) << app;
}

TEST_P(SnapshotRoundTrip, PhaseRestoreIsByteIdentical)
{
    const std::string app = GetParam();
    const RunConfig base = smokeConfig();
    const std::string cold = runJson(app, base);

    const auto [blob, capture_json] =
        captureAt(app, base, {snapshot::AtKind::Phase, 1});
    EXPECT_EQ(capture_json, cold) << app;
    ASSERT_FALSE(blob->empty()) << app;

    EXPECT_EQ(restoreJson(app, base, blob), cold) << app;
}

INSTANTIATE_TEST_SUITE_P(AllApps, SnapshotRoundTrip,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto& info) { return info.param; });

TEST(Snapshot, IterRestoreIsByteIdenticalUnderUm)
{
    // Non-GPS paradigms snapshot too; iter points resume at an
    // iteration boundary.
    const RunConfig base = smokeConfig(ParadigmKind::Um, 2);
    const std::string cold = runJson("Jacobi", base);
    const auto [blob, capture_json] =
        captureAt("Jacobi", base, {snapshot::AtKind::Iter, 2});
    EXPECT_EQ(capture_json, cold);
    ASSERT_FALSE(blob->empty());
    EXPECT_EQ(restoreJson("Jacobi", base, blob), cold);
}

TEST(Snapshot, FileRoundTripMatchesInMemory)
{
    const RunConfig base = smokeConfig(ParadigmKind::Gps, 2);
    const std::string cold = runJson("Jacobi", base);

    TempFile file;
    RunConfig capture = base;
    capture.snapshotAt = {snapshot::AtKind::Profile, 0};
    capture.snapshotOut = file.path();
    EXPECT_EQ(runJson("Jacobi", capture), cold);

    const std::string bytes = readFile(file.path());
    ASSERT_FALSE(bytes.empty());
    // The file decodes standalone and identifies its run.
    const snapshot::Snapshot snap = snapshot::readSnapshotFile(file.path());
    EXPECT_EQ(snap.meta.workload, "Jacobi");
    EXPECT_EQ(snap.meta.numGpus, 2u);

    RunConfig restore = base;
    restore.restoreFrom = file.path();
    EXPECT_EQ(runJson("Jacobi", restore), cold);
}

TEST(Snapshot, UnreachedPointWarnsAndWritesNothing)
{
    RunConfig config = smokeConfig(ParadigmKind::Gps, 2);
    config.snapshotAt = {snapshot::AtKind::Iter, 1000};
    config.snapshotSink = std::make_shared<std::string>();
    (void)runJson("Jacobi", config);
    EXPECT_TRUE(config.snapshotSink->empty());
}

// ---------------------------------------------------------------------
// Corruption rejection: a bad snapshot must never half-restore.
// ---------------------------------------------------------------------

class SnapshotCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = smokeConfig(ParadigmKind::Gps, 2);
        auto [blob, json] =
            captureAt("Jacobi", base_, {snapshot::AtKind::Profile, 0});
        bytes_ = *blob;
        ASSERT_FALSE(bytes_.empty());
    }

    void
    expectRejected(const std::string& bytes)
    {
        TempFile file;
        writeFile(file.path(), bytes);
        RunConfig config = base_;
        config.restoreFrom = file.path();
        EXPECT_THROW((void)runWorkload("Jacobi", config),
                     snapshot::SnapshotError);
    }

    RunConfig base_;
    std::string bytes_;
};

TEST_F(SnapshotCorruption, TruncatedFileIsRejected)
{
    // A writer killed mid-write: every prefix must be rejected, from an
    // empty file to one missing a single byte.
    expectRejected("");
    expectRejected(bytes_.substr(0, 4));
    expectRejected(bytes_.substr(0, bytes_.size() / 2));
    expectRejected(bytes_.substr(0, bytes_.size() - 1));
}

TEST_F(SnapshotCorruption, TrailingJunkIsRejected)
{
    expectRejected(bytes_ + "x");
}

TEST_F(SnapshotCorruption, BitFlipIsRejected)
{
    // Flip one body byte: the CRC must catch it.
    std::string bytes = bytes_;
    bytes[bytes.size() - 10] ^= 0x01;
    expectRejected(bytes);
}

TEST_F(SnapshotCorruption, BadMagicAndVersionAreRejected)
{
    std::string bad_magic = bytes_;
    bad_magic[0] = 'X';
    expectRejected(bad_magic);

    std::string bad_version = bytes_;
    bad_version[8] ^= 0x40; // version field follows the 8-byte magic
    expectRejected(bad_version);
}

TEST_F(SnapshotCorruption, WrongRunIdentityIsRejected)
{
    // A valid snapshot of a different configuration must be refused by
    // the meta check, not silently applied.
    TempFile file;
    writeFile(file.path(), bytes_);

    RunConfig wrong_gpus = smokeConfig(ParadigmKind::Gps, 4);
    wrong_gpus.restoreFrom = file.path();
    EXPECT_THROW((void)runWorkload("Jacobi", wrong_gpus),
                 snapshot::SnapshotError);

    RunConfig wrong_app = base_;
    wrong_app.restoreFrom = file.path();
    EXPECT_THROW((void)runWorkload("Nbody", wrong_app),
                 snapshot::SnapshotError);

    RunConfig wrong_paradigm = smokeConfig(ParadigmKind::Um, 2);
    wrong_paradigm.restoreFrom = file.path();
    EXPECT_THROW((void)runWorkload("Jacobi", wrong_paradigm),
                 snapshot::SnapshotError);
}

TEST_F(SnapshotCorruption, RestoreVerificationCatchesStateDivergence)
{
    // Seeded divergence: the test hook perturbs one page's driver state
    // after applying the snapshot, so the functional-summary comparison
    // (backed by the RefModel-style invariant suite) must fire.
    TempFile file;
    writeFile(file.path(), bytes_);
    RunConfig config = base_;
    config.restoreFrom = file.path();
    config.restoreMutateForTest = true;
    EXPECT_THROW((void)runWorkload("Jacobi", config),
                 snapshot::SnapshotError);
}

TEST_F(SnapshotCorruption, CaptureRefusesCheckAndProfileRuns)
{
    RunConfig checked = base_;
    checked.snapshotAt = {snapshot::AtKind::Profile, 0};
    checked.snapshotSink = std::make_shared<std::string>();
    checked.check.enabled = true;
    EXPECT_THROW((void)runWorkload("Jacobi", checked),
                 snapshot::SnapshotError);

    TempFile file;
    writeFile(file.path(), bytes_);
    RunConfig profiled = base_;
    profiled.restoreFrom = file.path();
    profiled.obs.profile = true;
    EXPECT_THROW((void)runWorkload("Jacobi", profiled),
                 snapshot::SnapshotError);
}

// Serializable collectors (metrics, timeline, causal) round-trip with
// the machine state: a restored observability run reproduces the
// uninterrupted run's outputs byte for byte.
TEST(SnapshotObs, RestoredObsRunIsByteIdentical)
{
    RunConfig base = smokeConfig();
    base.obs.metrics = true;
    base.obs.timeline = true;
    base.obs.causal = true;
    base.obs.sampleEvery = 1000;

    RunConfig capture = base;
    capture.snapshotAt = {snapshot::AtKind::Iter, 2};
    capture.snapshotSink = std::make_shared<std::string>();
    const RunResult cold = runWorkload("Jacobi", capture);
    ASSERT_NE(cold.obs, nullptr);

    RunConfig resume = base;
    resume.restoreBlob = capture.snapshotSink;
    const RunResult warm = runWorkload("Jacobi", resume);
    ASSERT_NE(warm.obs, nullptr);

    EXPECT_EQ(warm.totalTime, cold.totalTime);
    EXPECT_EQ(metricsToJson(*warm.obs), metricsToJson(*cold.obs));
    EXPECT_EQ(timelineToJson(*warm.obs), timelineToJson(*cold.obs));
    EXPECT_EQ(causalToJson(warm.obs->causal),
              causalToJson(cold.obs->causal));
}

// ---------------------------------------------------------------------
// Atomic snapshot writes.
// ---------------------------------------------------------------------

TEST(SnapshotFile, WriteIsAtomicAndReadable)
{
    TempFile file;
    // Seed the final name with garbage: the temp+rename publish must
    // replace it wholesale, never append or mix.
    writeFile(file.path(), "stale garbage");
    const std::string payload(1 << 16, 'z');

    // Hand-build a minimal valid container through the public API by
    // capturing a real run, then verify publish-over-existing works.
    const RunConfig base = smokeConfig(ParadigmKind::Memcpy, 2);
    RunConfig capture = base;
    capture.snapshotAt = {snapshot::AtKind::Iter, 1};
    capture.snapshotOut = file.path();
    (void)runWorkload("Jacobi", capture);

    const snapshot::Snapshot snap =
        snapshot::readSnapshotFile(file.path());
    EXPECT_EQ(snap.meta.workload, "Jacobi");
    // No temp file left behind.
    EXPECT_EQ(::access((file.path() + ".tmp.0").c_str(), F_OK), -1);
}

// ---------------------------------------------------------------------
// Warm-started sweeps.
// ---------------------------------------------------------------------

TEST(WarmSweep, WarmOutcomesAreByteIdenticalToCold)
{
    // A fig11-style grid: one warm group (same profile-relevant config,
    // different steady-state knobs) plus an ineligible odd one out.
    std::vector<SweepJob> jobs;
    for (const std::size_t steady : {1u, 2u, 3u}) {
        RunConfig config = smokeConfig(ParadigmKind::Gps, 2);
        config.steadyIterations = steady;
        jobs.push_back({"Jacobi", config, "steady"});
    }
    RunConfig other = smokeConfig(ParadigmKind::Um, 2);
    jobs.push_back({"Jacobi", other, "um"});

    const std::vector<SweepOutcome> cold = runSweep(jobs, 2);
    WarmSweepStats stats;
    const std::vector<SweepOutcome> warm = runSweepWarm(jobs, 2, &stats);

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        ASSERT_TRUE(cold[i].ok()) << i;
        ASSERT_TRUE(warm[i].ok()) << i;
        EXPECT_EQ(resultToJson(cold[i].result, true),
                  resultToJson(warm[i].result, true))
            << i;
    }

    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.leaders, 1u);
    EXPECT_EQ(stats.followers, 2u);
    EXPECT_EQ(stats.coldFallbacks, 0u);
    EXPECT_GT(stats.leaderWallSeconds, 0.0);
    EXPECT_GT(stats.followerWallSeconds, 0.0);
}

TEST(WarmSweep, SingletonGroupsRunCold)
{
    std::vector<SweepJob> jobs;
    jobs.push_back({"Jacobi", smokeConfig(ParadigmKind::Gps, 2), "a"});
    jobs.push_back({"Nbody", smokeConfig(ParadigmKind::Gps, 2), "b"});
    WarmSweepStats stats;
    const std::vector<SweepOutcome> out = runSweepWarm(jobs, 2, &stats);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].ok());
    EXPECT_TRUE(out[1].ok());
    EXPECT_EQ(stats.groups, 0u);
    EXPECT_EQ(stats.followers, 0u);
}

TEST(WarmSweep, WarmKeyGroupsOnlyProfileRelevantConfig)
{
    const RunConfig base = smokeConfig(ParadigmKind::Gps, 2);
    RunConfig steady = base;
    steady.steadyIterations = 9;
    // Steady-state knobs do not affect the profile-boundary state.
    EXPECT_EQ(warmKey("Jacobi", base), warmKey("Jacobi", steady));
    // GPU count does.
    RunConfig gpus = base;
    gpus.system.numGpus = 4;
    EXPECT_NE(warmKey("Jacobi", base), warmKey("Jacobi", gpus));
    // So does the workload.
    EXPECT_NE(warmKey("Jacobi", base), warmKey("Nbody", base));
}

// ---------------------------------------------------------------------
// Validated numeric parsing (shared by cache caps, --jobs, snapshots).
// ---------------------------------------------------------------------

TEST(EnvParse, ParseSizeTAcceptsOnlyStrictDecimals)
{
    std::size_t out = 99;
    EXPECT_TRUE(parseSizeT("0", out));
    EXPECT_EQ(out, 0u);
    EXPECT_TRUE(parseSizeT("123", out));
    EXPECT_EQ(out, 123u);

    out = 99;
    for (const char* bad : {"", "-1", "+1", " 1", "1 ", "1x", "0x10",
                            "99999999999999999999999999"})
        EXPECT_FALSE(parseSizeT(bad, out)) << bad;
    EXPECT_EQ(out, 99u); // failures leave the output untouched
}

TEST(EnvParse, ParseSizeTOrFallsBackOnBadOrOversizedInput)
{
    EXPECT_EQ(parseSizeTOr("7", "knob", 3), 7u);
    EXPECT_EQ(parseSizeTOr("-1", "knob", 3), 3u);
    EXPECT_EQ(parseSizeTOr("garbage", "knob", 3), 3u);
    // strtoul would wrap "-1" to SIZE_MAX; the validated parser must
    // not let an over-max value through either.
    EXPECT_EQ(parseSizeTOr("5000", "knob", 3, 1024), 3u);
    EXPECT_EQ(parseSizeTOr("1024", "knob", 3, 1024), 1024u);
}

TEST(EnvParse, EnvSizeTReadsValidatesAndDefaults)
{
    ::unsetenv("GPS_TEST_ENV_KNOB");
    EXPECT_EQ(envSizeT("GPS_TEST_ENV_KNOB", 5), 5u);
    ::setenv("GPS_TEST_ENV_KNOB", "42", 1);
    EXPECT_EQ(envSizeT("GPS_TEST_ENV_KNOB", 5), 42u);
    ::setenv("GPS_TEST_ENV_KNOB", "-3", 1);
    EXPECT_EQ(envSizeT("GPS_TEST_ENV_KNOB", 5), 5u);
    ::setenv("GPS_TEST_ENV_KNOB", "0", 1);
    EXPECT_EQ(envSizeT("GPS_TEST_ENV_KNOB", 5), 0u);
    ::unsetenv("GPS_TEST_ENV_KNOB");
}

} // namespace
} // namespace gps
