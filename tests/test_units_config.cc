/**
 * @file
 * Unit tests for unit conversions and the config dump renderer.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/units.hh"

namespace gps
{
namespace
{

TEST(Units, TimeConversionsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), ticksPerSecond);
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_EQ(usToTicks(1.0), 1000000u);
    EXPECT_DOUBLE_EQ(ticksToSeconds(ticksPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(usToTicks(12.0)), 12.0);
    EXPECT_DOUBLE_EQ(ticksToMs(secondsToTicks(0.004)), 4.0);
}

TEST(Units, TransferTicksMatchesBandwidth)
{
    // 16 GB at 16 GB/s = 1 s.
    const Tick t = transferTicks(16'000'000'000ULL, 16.0 * GBps);
    EXPECT_NEAR(ticksToSeconds(t), 1.0, 1e-9);
}

TEST(Units, TransferTicksZeroBytesIsFree)
{
    EXPECT_EQ(transferTicks(0, 16.0 * GBps), 0u);
}

TEST(Units, TransferTicksZeroBandwidthIsFree)
{
    // The infinite-bandwidth convention.
    EXPECT_EQ(transferTicks(1 << 20, 0.0), 0u);
}

TEST(Units, ByteConstants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(ConfigDump, RendersSectionsAndAlignedEntries)
{
    ConfigDump dump;
    dump.section("GPU");
    dump.entry("short", std::uint64_t(5));
    dump.entry("a much longer key", "value");
    const std::string out = dump.render();
    EXPECT_NE(out.find("== GPU =="), std::string::npos);
    EXPECT_NE(out.find("short"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(ConfigDump, KeepsInsertionOrder)
{
    ConfigDump dump;
    dump.entry("first", std::uint64_t(1));
    dump.entry("second", std::uint64_t(2));
    const std::string out = dump.render();
    EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(ConfigDump, DoubleEntriesRender)
{
    ConfigDump dump;
    dump.entry("ratio", 2.5);
    EXPECT_NE(dump.render().find("2.5"), std::string::npos);
}

} // namespace
} // namespace gps
