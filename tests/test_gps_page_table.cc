/**
 * @file
 * Unit tests for the wide-leaf GPS page table.
 */

#include <gtest/gtest.h>

#include "core/gps_page_table.hh"

namespace gps
{
namespace
{

TEST(GpsPageTable, LookupMissReturnsNull)
{
    GpsPageTable table;
    EXPECT_EQ(table.lookup(1), nullptr);
}

TEST(GpsPageTable, AddReplicaCreatesWidePte)
{
    GpsPageTable table;
    table.addReplica(1, 0, 100);
    table.addReplica(1, 2, 200);
    const GpsPte* pte = table.lookup(1);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->replicas.size(), 2u);
    EXPECT_TRUE(pte->hasSubscriber(0));
    EXPECT_TRUE(pte->hasSubscriber(2));
    EXPECT_FALSE(pte->hasSubscriber(1));
}

TEST(GpsPageTable, AddReplicaRefreshesExistingGpu)
{
    GpsPageTable table;
    table.addReplica(1, 0, 100);
    table.addReplica(1, 0, 101);
    const GpsPte* pte = table.lookup(1);
    ASSERT_EQ(pte->replicas.size(), 1u);
    EXPECT_EQ(pte->replicas[0].ppn, 101u);
}

TEST(GpsPageTable, SubscriberMaskMatchesReplicas)
{
    GpsPageTable table;
    table.addReplica(7, 1, 0);
    table.addReplica(7, 3, 0);
    EXPECT_EQ(table.lookup(7)->subscriberMask(),
              gpuBit(1) | gpuBit(3));
}

TEST(GpsPageTable, RemoveReplicaKeepsOthers)
{
    GpsPageTable table;
    table.addReplica(1, 0, 100);
    table.addReplica(1, 1, 101);
    table.removeReplica(1, 0);
    const GpsPte* pte = table.lookup(1);
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->hasSubscriber(0));
    EXPECT_TRUE(pte->hasSubscriber(1));
}

TEST(GpsPageTable, RemovingLastReplicaDropsPte)
{
    GpsPageTable table;
    table.addReplica(1, 0, 100);
    table.removeReplica(1, 0);
    EXPECT_EQ(table.lookup(1), nullptr);
    EXPECT_EQ(table.size(), 0u);
}

TEST(GpsPageTable, RemoveFromUnknownPageIsNoop)
{
    GpsPageTable table;
    table.removeReplica(42, 0);
    EXPECT_EQ(table.size(), 0u);
}

TEST(GpsPageTable, PteBitsMatchesPaperExample)
{
    // Section 5.2: 64 KB pages, 33-bit VPN, 31-bit PPN, 4 GPUs ->
    // 126-bit minimum GPS-PTE.
    EXPECT_EQ(GpsPageTable::pteBits(4, 33, 31), 126u);
    // 16 GPUs need 15 remote PPNs.
    EXPECT_EQ(GpsPageTable::pteBits(16, 33, 31), 33u + 15u * 31u);
}

} // namespace
} // namespace gps
