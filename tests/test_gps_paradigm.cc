/**
 * @file
 * Unit tests for the GPS paradigm: load/store routing, store
 * forwarding, write-queue forwarding to loads, sys-scope collapse,
 * profiling-driven unsubscription and manual subscription.
 */

#include <gtest/gtest.h>

#include "core/gps_paradigm.hh"

namespace gps
{
namespace
{

class GpsParadigmTest : public ::testing::Test
{
  protected:
    GpsParadigmTest()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        paradigm = std::make_unique<GpsParadigm>(*system);
        traffic = std::make_unique<TrafficMatrix>(4);
        region = &system->driver().mallocGps(2 * 64 * KiB, "gps", 0);
        vpn = system->geometry().pageNum(region->base);
        paradigm->onSetupComplete(); // subscribe-all (auto mode)
    }

    void
    access(GpuId gpu, const MemAccess& a)
    {
        const PageNum page = system->geometry().pageNum(a.vaddr);
        const bool miss = system->gpu(gpu).tlbAccess(page, counters);
        paradigm->access(gpu, a, page, miss, counters, *traffic);
    }

    void
    endKernels()
    {
        for (GpuId g = 0; g < 4; ++g)
            paradigm->endKernel(g, counters, *traffic);
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<GpsParadigm> paradigm;
    std::unique_ptr<TrafficMatrix> traffic;
    const Region* region = nullptr;
    PageNum vpn = 0;
    KernelCounters counters;
};

TEST_F(GpsParadigmTest, SetupSubscribesEveryGpuToAutoRegions)
{
    EXPECT_EQ(paradigm->subscriptions().subscribers(vpn), maskAll(4));
    EXPECT_TRUE(system->driver().state(vpn).gpsBitSet);
}

TEST_F(GpsParadigmTest, SubscriberLoadIsPurelyLocal)
{
    access(1, MemAccess::load(region->base));
    EXPECT_EQ(counters.remoteLoads, 0u);
    EXPECT_EQ(traffic->total(), 0u);
    EXPECT_EQ(counters.l2Misses, 1u);
}

TEST_F(GpsParadigmTest, WeakStoreEntersWriteQueueNotWire)
{
    access(0, MemAccess::store(region->base));
    EXPECT_EQ(counters.wqInserts, 1u);
    // Nothing drained yet: no traffic until a drain point.
    EXPECT_EQ(traffic->total(), 0u);
}

TEST_F(GpsParadigmTest, DrainForwardsOneLineToEachRemoteSubscriber)
{
    access(0, MemAccess::store(region->base));
    endKernels();
    EXPECT_EQ(counters.wqDrains, 1u);
    const std::uint64_t msg =
        128 + system->topology().spec().headerBytes;
    for (GpuId g = 1; g < 4; ++g)
        EXPECT_EQ(traffic->at(0, g), msg);
    EXPECT_EQ(traffic->at(0, 0), 0u);
    EXPECT_EQ(counters.pushedStoreBytes, 3u * 128u);
}

TEST_F(GpsParadigmTest, SameLineStoresCoalesceBeforeTheWire)
{
    // Two temporally distant same-line stores: one wire message.
    access(0, MemAccess::store(region->base));
    for (Addr a = 128; a < 128 * 40; a += 128)
        access(0, MemAccess::store(region->base + a));
    access(0, MemAccess::store(region->base + 4));
    EXPECT_EQ(counters.wqCoalesced, 1u);
    endKernels();
    EXPECT_EQ(counters.wqDrains, 40u);
}

TEST_F(GpsParadigmTest, SmCoalescerAbsorbsImmediateSameLineStores)
{
    access(0, MemAccess::store(region->base));
    access(0, MemAccess::store(region->base + 4));
    EXPECT_EQ(counters.smCoalesced, 1u);
    EXPECT_EQ(counters.wqInserts, 1u);
}

TEST_F(GpsParadigmTest, AtomicsBypassCoalescingAndForwardEach)
{
    access(0, MemAccess::atomic(region->base, 4));
    access(0, MemAccess::atomic(region->base, 4));
    EXPECT_EQ(counters.wqAtomicBypass, 2u);
    EXPECT_EQ(counters.wqCoalesced, 0u);
    // Forwarded immediately, per subscriber.
    const std::uint64_t msg =
        4 + system->topology().spec().headerBytes;
    EXPECT_EQ(traffic->at(0, 1), 2 * msg);
    EXPECT_DOUBLE_EQ(paradigm->wqHitRate(), 0.0);
}

TEST_F(GpsParadigmTest, SoleSubscriberStoreIsNotForwarded)
{
    // Unsubscribe everyone but GPU0: the page is demoted.
    KernelCounters scratch;
    for (GpuId g = 1; g < 4; ++g)
        paradigm->subscriptions().unsubscribe(vpn, g, &scratch);
    access(0, MemAccess::store(region->base));
    endKernels();
    EXPECT_EQ(traffic->total(), 0u);
    EXPECT_EQ(counters.wqInserts, 0u);
}

TEST_F(GpsParadigmTest, NonSubscriberLoadGoesToASubscriber)
{
    KernelCounters scratch;
    // GPU3 unsubscribes from page 0.
    paradigm->subscriptions().unsubscribe(vpn, 3, &scratch);
    access(3, MemAccess::load(region->base));
    EXPECT_EQ(counters.remoteLoads, 1u);
}

TEST_F(GpsParadigmTest, NonSubscriberLoadForwardsFromOwnWriteQueue)
{
    KernelCounters scratch;
    paradigm->subscriptions().unsubscribe(vpn, 3, &scratch);
    // GPU3 stores first (buffered in its WQ), then loads the same line.
    access(3, MemAccess::store(region->base));
    access(3, MemAccess::load(region->base));
    EXPECT_EQ(counters.remoteLoads, 0u);
}

TEST_F(GpsParadigmTest, SysStoreCollapsesThePage)
{
    access(0, MemAccess::store(region->base)); // in-flight weak store
    access(1, MemAccess::sysStore(region->base));
    EXPECT_EQ(counters.sysCollapses, 1u);
    const PageState& st = system->driver().state(vpn);
    EXPECT_TRUE(st.collapsed);
    EXPECT_EQ(maskCount(st.subscribers), 1u);
    // The in-flight write was flushed before the collapse.
    EXPECT_GE(counters.wqDrains, 1u);
    // Subsequent accesses behave conventionally (single copy).
    const std::uint64_t loads_before = counters.remoteLoads;
    access(2, MemAccess::load(region->base));
    EXPECT_GE(counters.remoteLoads, loads_before);
}

TEST_F(GpsParadigmTest, TrackingStopUnsubscribesUntouchedGpus)
{
    paradigm->trackingStart();
    // Only GPUs 0 and 2 touch page 0 during profiling; nobody touches
    // page 1.
    access(0, MemAccess::store(region->base));
    access(2, MemAccess::load(region->base));
    endKernels();
    paradigm->trackingStop(counters);
    EXPECT_EQ(paradigm->subscriptions().subscribers(vpn),
              gpuBit(0) | gpuBit(2));
    // Untouched page keeps exactly one subscriber.
    EXPECT_EQ(maskCount(paradigm->subscriptions().subscribers(vpn + 1)),
              1u);
}

TEST_F(GpsParadigmTest, TrackingDisabledKeepsAllToAll)
{
    SystemConfig config;
    config.numGpus = 4;
    config.gps.autoUnsubscribe = false;
    MultiGpuSystem sys2(config);
    GpsParadigm p2(sys2);
    const Region& r = sys2.driver().mallocGps(64 * KiB, "gps", 0);
    p2.onSetupComplete();
    p2.trackingStart();
    KernelCounters c;
    p2.trackingStop(c);
    EXPECT_EQ(p2.subscriptions().subscribers(
                  sys2.geometry().pageNum(r.base)),
              maskAll(4));
}

TEST_F(GpsParadigmTest, ManualRegionsAreNotAutoSubscribed)
{
    SystemConfig config;
    config.numGpus = 4;
    MultiGpuSystem sys2(config);
    GpsParadigm p2(sys2);
    const Region& r =
        sys2.driver().mallocGps(64 * KiB, "manual", 1, true);
    p2.onSetupComplete();
    const PageNum p = sys2.geometry().pageNum(r.base);
    EXPECT_EQ(p2.subscriptions().subscribers(p), gpuBit(1));
    // Manual subscription through the memAdvise-style hook.
    p2.adviseSubscribe(r.base, r.size, 3);
    EXPECT_EQ(p2.subscriptions().subscribers(p),
              gpuBit(1) | gpuBit(3));
    EXPECT_TRUE(p2.adviseUnsubscribe(r.base, r.size, 3));
    // Refusing to drop the last subscriber reports false.
    EXPECT_FALSE(p2.adviseUnsubscribe(r.base, r.size, 1));
}

TEST_F(GpsParadigmTest, GpsTlbCountsHitsOnRepeatedDrains)
{
    for (int i = 0; i < 10; ++i) {
        access(0, MemAccess::store(region->base +
                                   static_cast<Addr>(i) * 128));
    }
    endKernels();
    EXPECT_EQ(counters.gpsTlbMisses, 1u);
    EXPECT_EQ(counters.gpsTlbHits, 9u);
    EXPECT_GT(paradigm->gpsTlbHitRate(), 0.8);
}

TEST_F(GpsParadigmTest, SubscriberHistogramReflectsSubscriptions)
{
    KernelCounters scratch;
    paradigm->subscriptions().unsubscribe(vpn, 2, &scratch);
    paradigm->subscriptions().unsubscribe(vpn, 3, &scratch);
    Histogram hist(8);
    EXPECT_TRUE(paradigm->fillSubscriberHistogram(hist));
    EXPECT_EQ(hist.bucket(2), 1u); // page 0: two subscribers
    EXPECT_EQ(hist.bucket(4), 1u); // page 1: still all four
}

} // namespace
} // namespace gps
