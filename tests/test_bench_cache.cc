/**
 * @file
 * Tests for the bench-layer run cache and its validated knobs:
 * GPS_BENCH_CACHE_CAP=0 meaning "caching disabled" (not unbounded),
 * LRU draining on rebound, and the shared worker-count parser that
 * rejects "-1"/overflow instead of letting strtoul wrap them into
 * thousands of threads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../bench/bench_common.hh"
#include "api/result_export.hh"

namespace gps::bench
{
namespace
{

RunConfig
tinyConfig(std::size_t gpus = 2)
{
    RunConfig config;
    config.system.numGpus = gpus;
    config.scale = 0.0625;
    config.paradigm = ParadigmKind::Memcpy;
    return config;
}

/** Reset the process-wide cache around every test. */
class RunCacheTest : public ::testing::Test
{
  protected:
    RunCacheTest()
    {
        RunCache::instance().clear();
        RunCache::instance().setCapacity(512);
    }
    ~RunCacheTest() override
    {
        RunCache::instance().clear();
        RunCache::instance().setCapacity(512);
    }
};

TEST_F(RunCacheTest, CapacityZeroDisablesCaching)
{
    RunCache& cache = RunCache::instance();
    cache.setCapacity(0);

    const RunHandle first = cache.get("Jacobi", tinyConfig());
    const RunHandle second = cache.get("Jacobi", tinyConfig());
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_NE(first.get(), second.get()); // no sharing when disabled
    // Recomputing is still deterministic.
    EXPECT_EQ(resultToJson(*first, true), resultToJson(*second, true));

    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.counters().misses, 2u);
    EXPECT_EQ(cache.counters().hits, 0u);
    // Perf rows are still recorded for BENCH_perf.json.
    EXPECT_EQ(cache.perf().size(), 2u);
}

TEST_F(RunCacheTest, BoundedLruCachesAndHits)
{
    RunCache& cache = RunCache::instance();
    const RunHandle cold = cache.get("Jacobi", tinyConfig());
    const RunHandle warm = cache.get("Jacobi", tinyConfig());
    EXPECT_EQ(cold.get(), warm.get());
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST_F(RunCacheTest, SetCapacityZeroDrainsResidentEntries)
{
    RunCache& cache = RunCache::instance();
    (void)cache.get("Jacobi", tinyConfig(2));
    (void)cache.get("Jacobi", tinyConfig(4));
    EXPECT_EQ(cache.size(), 2u);
    cache.setCapacity(0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.counters().evictions, 2u);
}

TEST(ParseWorkerCount, ValidatesAndClamps)
{
    EXPECT_EQ(parseWorkerCount("3", 1), 3u);
    EXPECT_EQ(parseWorkerCount("auto", 1), defaultSweepJobs());
    EXPECT_EQ(parseWorkerCount(std::to_string(maxSweepJobs), 1),
              maxSweepJobs);

    // The historical bug: strtoul wraps "-1" to SIZE_MAX and accepts
    // overflowed digit strings, spawning absurd thread counts. The
    // validated parser falls back instead.
    EXPECT_EQ(parseWorkerCount("-1", 1), 1u);
    EXPECT_EQ(parseWorkerCount("99999999999999999999999999", 2), 2u);
    EXPECT_EQ(parseWorkerCount(std::to_string(maxSweepJobs + 1), 2), 2u);
    EXPECT_EQ(parseWorkerCount("0", 3), 3u);
    EXPECT_EQ(parseWorkerCount("2x", 3), 3u);
    EXPECT_EQ(parseWorkerCount("", 3), 3u);
}

TEST(ParseJobs, ReadsArgvAndStripsTheFlag)
{
    std::string prog = "bench", flag = "--jobs", val = "2",
                other = "--rest";
    char* argv[] = {prog.data(), flag.data(), val.data(), other.data()};
    int argc = 4;
    EXPECT_EQ(parseJobs(argc, argv), 2u);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--rest");
}

TEST(ParseJobs, RejectsNegativeArgv)
{
    std::string prog = "bench", flag = "--jobs", val = "-1";
    char* argv[] = {prog.data(), flag.data(), val.data()};
    int argc = 3;
    EXPECT_EQ(parseJobs(argc, argv), 1u); // fallback, not SIZE_MAX
    EXPECT_EQ(argc, 1);
}

TEST(ParseJobs, ReadsAndValidatesEnvironment)
{
    std::string prog = "bench";
    char* argv[] = {prog.data()};

    ::setenv("GPS_BENCH_JOBS", "3", 1);
    int argc = 1;
    EXPECT_EQ(parseJobs(argc, argv), 3u);

    ::setenv("GPS_BENCH_JOBS", "-1", 1);
    argc = 1;
    EXPECT_EQ(parseJobs(argc, argv), 1u);

    ::setenv("GPS_BENCH_JOBS", "garbage", 1);
    argc = 1;
    EXPECT_EQ(parseJobs(argc, argv), 1u);

    ::unsetenv("GPS_BENCH_JOBS");
    argc = 1;
    EXPECT_EQ(parseJobs(argc, argv), 1u);
}

} // namespace
} // namespace gps::bench
