/**
 * @file
 * Unit tests for binary trace capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/logging.hh"
#include "trace/trace_file.hh"

namespace gps
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    TraceFileTest()
    {
        path_ = ::testing::TempDir() + "gps_trace_test.bin";
    }

    ~TraceFileTest() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripsAccessesExactly)
{
    std::vector<MemAccess> accesses = {
        MemAccess::load(0x1000, 128),
        MemAccess::store(0x2004, 4),
        MemAccess::atomic(0x3008, 8),
        MemAccess::sysStore(0x4000, 4),
    };
    {
        TraceWriter writer(path_);
        for (const MemAccess& a : accesses)
            writer.append(a);
    }
    TraceFileStream stream(path_);
    EXPECT_EQ(stream.records(), accesses.size());
    for (const MemAccess& expected : accesses) {
        MemAccess got;
        ASSERT_TRUE(stream.next(got));
        EXPECT_EQ(got.vaddr, expected.vaddr);
        EXPECT_EQ(got.size, expected.size);
        EXPECT_EQ(got.type, expected.type);
        EXPECT_EQ(got.scope, expected.scope);
    }
    MemAccess extra;
    EXPECT_FALSE(stream.next(extra));
}

TEST_F(TraceFileTest, AppendAllDrainsAStream)
{
    std::vector<MemAccess> accesses;
    for (int i = 0; i < 1000; ++i)
        accesses.push_back(MemAccess::load(static_cast<Addr>(i) * 128));
    VectorStream source(accesses);
    {
        TraceWriter writer(path_);
        EXPECT_EQ(writer.appendAll(source), 1000u);
    }
    TraceFileStream stream(path_);
    EXPECT_EQ(stream.records(), 1000u);
    MemAccess got;
    std::uint64_t count = 0;
    while (stream.next(got)) {
        EXPECT_EQ(got.vaddr, count * 128);
        ++count;
    }
    EXPECT_EQ(count, 1000u);
}

TEST_F(TraceFileTest, EmptyTraceIsValid)
{
    { TraceWriter writer(path_); }
    TraceFileStream stream(path_);
    EXPECT_EQ(stream.records(), 0u);
    MemAccess got;
    EXPECT_FALSE(stream.next(got));
}

TEST_F(TraceFileTest, RejectsNonTraceFiles)
{
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_THROW(TraceFileStream stream(path_), FatalError);
}

TEST_F(TraceFileTest, RejectsMissingFiles)
{
    EXPECT_THROW(TraceFileStream stream("/nonexistent/nope.bin"),
                 FatalError);
}

TEST_F(TraceFileTest, RejectsFutureVersions)
{
    { TraceWriter writer(path_); }
    // Corrupt the version field (offset 8).
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    std::fseek(f, 8, SEEK_SET);
    const std::uint32_t bad = 999;
    std::fwrite(&bad, sizeof(bad), 1, f);
    std::fclose(f);
    EXPECT_THROW(TraceFileStream stream(path_), FatalError);
}

TEST_F(TraceFileTest, DetectsTruncatedPayload)
{
    {
        TraceWriter writer(path_);
        for (int i = 0; i < 8; ++i)
            writer.append(MemAccess::load(static_cast<Addr>(i) * 128));
    }
    // Chop the last record in half: the size check fires on open.
    std::error_code ec;
    std::filesystem::resize_file(
        path_, std::filesystem::file_size(path_) - 8, ec);
    ASSERT_FALSE(ec);
    EXPECT_THROW(TraceFileStream stream(path_), FatalError);
}

TEST_F(TraceFileTest, DetectsCorruptedPayloadViaChecksum)
{
    {
        TraceWriter writer(path_);
        for (int i = 0; i < 8; ++i)
            writer.append(MemAccess::load(static_cast<Addr>(i) * 128));
    }
    // Flip one payload byte; the file size stays right, only the CRC
    // can notice.
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    std::fseek(f, 24 + 3 * 16, SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, 24 + 3 * 16, SEEK_SET);
    std::fputc(byte ^ 0x01, f);
    std::fclose(f);
    EXPECT_THROW(TraceFileStream stream(path_), FatalError);
}

TEST_F(TraceFileTest, DetectsHeaderLyingAboutRecordCount)
{
    {
        TraceWriter writer(path_);
        writer.append(MemAccess::load(0x1000));
        writer.append(MemAccess::load(0x2000));
    }
    // Claim 3 records while only 2 exist (offset 16 = u64 count).
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    std::fseek(f, 16, SEEK_SET);
    const std::uint64_t lie = 3;
    std::fwrite(&lie, sizeof(lie), 1, f);
    std::fclose(f);
    EXPECT_THROW(TraceFileStream stream(path_), FatalError);
}

TEST_F(TraceFileTest, WriterIsReusableAsPlainStreamSource)
{
    {
        TraceWriter writer(path_);
        writer.append(MemAccess::store(42, 4));
        EXPECT_EQ(writer.recordsWritten(), 1u);
        writer.close(); // explicit close then destructor: no double free
    }
    TraceFileStream stream(path_);
    MemAccess got;
    ASSERT_TRUE(stream.next(got));
    EXPECT_EQ(got.vaddr, 42u);
}

} // namespace
} // namespace gps
