/**
 * @file
 * Unit tests for the conventional page table and its GPS bit.
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace gps
{
namespace
{

TEST(PageTable, LookupMissReturnsNull)
{
    PageTable table("pt");
    EXPECT_EQ(table.lookup(5), nullptr);
}

TEST(PageTable, MapThenLookup)
{
    PageTable table("pt");
    table.map(5, Pte{42, 1, false});
    const Pte* pte = table.lookup(5);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->ppn, 42u);
    EXPECT_EQ(pte->location, 1);
    EXPECT_FALSE(pte->gpsBit);
}

TEST(PageTable, RemapReplacesEntry)
{
    PageTable table("pt");
    table.map(5, Pte{42, 1, false});
    table.map(5, Pte{43, 2, true});
    const Pte* pte = table.lookup(5);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->ppn, 43u);
    EXPECT_EQ(pte->location, 2);
    EXPECT_TRUE(pte->gpsBit);
    EXPECT_EQ(table.size(), 1u);
}

TEST(PageTable, UnmapRemoves)
{
    PageTable table("pt");
    table.map(5, Pte{42, 1, false});
    table.unmap(5);
    EXPECT_EQ(table.lookup(5), nullptr);
    EXPECT_EQ(table.size(), 0u);
}

TEST(PageTable, UnmapMissingIsNoop)
{
    PageTable table("pt");
    table.unmap(999);
    EXPECT_EQ(table.size(), 0u);
}

TEST(PageTable, SetGpsBitTogglesOnly)
{
    PageTable table("pt");
    table.map(7, Pte{10, 0, false});
    table.setGpsBit(7, true);
    EXPECT_TRUE(table.lookup(7)->gpsBit);
    EXPECT_EQ(table.lookup(7)->ppn, 10u);
    table.setGpsBit(7, false);
    EXPECT_FALSE(table.lookup(7)->gpsBit);
}

TEST(PageTableDeath, SetGpsBitOnUnmappedPanics)
{
    PageTable table("pt");
    EXPECT_DEATH(table.setGpsBit(1, true), "unmapped");
}

TEST(PageTable, StatsCountOps)
{
    PageTable table("pt");
    table.map(1, Pte{});
    table.map(2, Pte{});
    table.unmap(1);
    StatSet stats;
    table.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("pt.map_ops"), 2.0);
    EXPECT_DOUBLE_EQ(stats.get("pt.unmap_ops"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("pt.mappings"), 1.0);
}

} // namespace
} // namespace gps
