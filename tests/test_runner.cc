/**
 * @file
 * Integration tests for the runner: phase execution, event-queue
 * synchronization, iteration extrapolation and result assembly, driven
 * by a minimal synthetic workload.
 */

#include <gtest/gtest.h>

#include "api/runner.hh"
#include "apps/app_common.hh"

namespace gps
{
namespace
{

/** Tiny deterministic workload: each GPU sweeps its private slab and
 * stores one shared page. */
class ToyWorkload : public Workload
{
  public:
    std::string name() const override { return "Toy"; }
    std::string description() const override { return "toy"; }
    std::string commPattern() const override { return "Peer-to-peer"; }
    std::size_t effectiveIterations() const override { return eff; }

    void
    setup(WorkloadContext& ctx) override
    {
        gpus = ctx.numGpus();
        shared = ctx.allocShared(gpus * 64 * KiB, "toy.shared");
        for (std::size_t g = 0; g < gpus; ++g) {
            priv.push_back(ctx.allocPrivate(
                64 * KiB, "toy.priv", static_cast<GpuId>(g)));
        }
    }

    std::vector<Phase>
    iteration(std::size_t iter, WorkloadContext& ctx) override
    {
        (void)iter;
        (void)ctx;
        Phase phase;
        phase.name = "toy.phase";
        for (std::size_t g = 0; g < gpus; ++g) {
            const GpuId gpu = static_cast<GpuId>(g);
            std::vector<apps::Group> groups;
            groups.push_back(apps::Group{{
                apps::Burst{priv[g], 64, 128, AccessType::Load, 128,
                            Scope::Weak},
                apps::Burst{shared + g * 64 * KiB, 64, 128,
                            AccessType::Store, 128, Scope::Weak},
            }});
            KernelLaunch kernel;
            kernel.gpu = gpu;
            kernel.name = "toy.kernel";
            kernel.computeInstrs = 1'000'000;
            kernel.stream = apps::makeGroupStream(std::move(groups));
            phase.kernels.push_back(std::move(kernel));
        }
        std::vector<Phase> phases;
        phases.push_back(std::move(phase));
        return phases;
    }

    std::size_t eff = 10;
    std::size_t gpus = 0;
    Addr shared = 0;
    std::vector<Addr> priv;
};

RunConfig
toyConfig()
{
    RunConfig config;
    config.system.numGpus = 2;
    return config;
}

TEST(Runner, ProducesNonzeroTimeAndCounters)
{
    ToyWorkload workload;
    Runner runner(toyConfig());
    const RunResult result = runner.run(workload);
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_GT(result.totals.accesses, 0u);
    EXPECT_EQ(result.numGpus, 2u);
    EXPECT_EQ(result.workload, "Toy");
}

TEST(Runner, AccessCountsMatchTheTrace)
{
    ToyWorkload workload;
    RunConfig config = toyConfig();
    config.paradigm = ParadigmKind::Memcpy;
    Runner runner(config);
    const RunResult result = runner.run(workload);
    // 2 GPUs x 128 accesses per phase x 5 simulated iterations.
    EXPECT_EQ(result.totals.accesses, 2u * 128u * 5u);
    EXPECT_EQ(result.totals.loads, 2u * 64u * 5u);
    EXPECT_EQ(result.totals.stores, 2u * 64u * 5u);
}

TEST(Runner, ExtrapolationScalesSteadyStateLinearly)
{
    ToyWorkload short_run;
    short_run.eff = 10;
    ToyWorkload long_run;
    long_run.eff = 100;
    RunConfig config = toyConfig();
    config.paradigm = ParadigmKind::Memcpy;
    Runner runner(config);
    const RunResult a = runner.run(short_run);
    const RunResult b = runner.run(long_run);
    const double ratio = static_cast<double>(b.totalTime) /
                         static_cast<double>(a.totalTime);
    // (1 + 99*s) / (1 + 9*s): close to 10 when iterations dominate.
    EXPECT_NEAR(ratio, 10.0, 1.0);
}

TEST(Runner, EffectiveIterationsOverrideWins)
{
    ToyWorkload workload;
    RunConfig config = toyConfig();
    config.paradigm = ParadigmKind::Memcpy;
    config.effectiveIterationsOverride = 1;
    Runner runner(config);
    const RunResult one = runner.run(workload);
    ToyWorkload workload2;
    config.effectiveIterationsOverride = 0; // back to workload's 10
    const RunResult ten = Runner(config).run(workload2);
    EXPECT_LT(one.totalTime, ten.totalTime);
    // A single effective iteration simulates only iteration 0.
    EXPECT_EQ(one.totals.accesses, 2u * 128u);
}

TEST(Runner, GpsRunProducesSubscriberHistogram)
{
    ToyWorkload workload;
    RunConfig config = toyConfig();
    config.paradigm = ParadigmKind::Gps;
    const RunResult result = Runner(config).run(workload);
    EXPECT_TRUE(result.hasSubscriberHist);
    EXPECT_GT(result.totals.wqDrains + result.totals.wqInserts, 0u);
}

TEST(Runner, MemcpyBaselineHasNoFaults)
{
    ToyWorkload workload;
    RunConfig config = toyConfig();
    config.paradigm = ParadigmKind::Memcpy;
    const RunResult result = Runner(config).run(workload);
    EXPECT_EQ(result.totals.pageFaults, 0u);
}

TEST(Runner, SingleGpuRunWorks)
{
    ToyWorkload workload;
    RunConfig config = toyConfig();
    config.system.numGpus = 1;
    config.paradigm = ParadigmKind::Memcpy;
    const RunResult result = Runner(config).run(workload);
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_EQ(result.interconnectBytes, 0u);
}

TEST(Runner, InfiniteBwNeverSlowerThanMemcpy)
{
    ToyWorkload a, b;
    RunConfig config = toyConfig();
    config.paradigm = ParadigmKind::Memcpy;
    const RunResult memcpy_result = Runner(config).run(a);
    config.paradigm = ParadigmKind::InfiniteBw;
    const RunResult infinite_result = Runner(config).run(b);
    EXPECT_LE(infinite_result.totalTime, memcpy_result.totalTime);
}

TEST(Runner, RunByNameResolvesBundledWorkloads)
{
    RunConfig config = toyConfig();
    config.scale = 0.03125;
    config.paradigm = ParadigmKind::Memcpy;
    const RunResult result = Runner(config).runByName("Jacobi");
    EXPECT_EQ(result.workload, "Jacobi");
    EXPECT_GT(result.totalTime, 0u);
}

} // namespace
} // namespace gps
