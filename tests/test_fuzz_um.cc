/**
 * @file
 * Randomized invariant tests for the Unified Memory engine: long random
 * access sequences (with and without hints) must keep the driver's page
 * state, page tables and frame accounting consistent.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "driver/um_engine.hh"
#include "paradigm/um_hints.hh"

namespace gps
{
namespace
{

class UmFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    UmFuzz()
    {
        SystemConfig config;
        config.numGpus = 4;
        system = std::make_unique<MultiGpuSystem>(config);
        engine = std::make_unique<UmEngine>(system->driver());
        traffic = std::make_unique<TrafficMatrix>(4);
        region = &system->driver().mallocManaged(16 * 64 * KiB, "fuzz");
        firstVpn = system->geometry().pageNum(region->base);
        pages = 16;
    }

    void
    checkInvariants()
    {
        std::vector<std::uint64_t> expected_frames(4, 0);
        for (PageNum vpn = firstVpn; vpn < firstVpn + pages; ++vpn) {
            const PageState& st = system->driver().state(vpn);
            if (st.location == invalidGpu) {
                ASSERT_EQ(st.backed, 0u);
                continue;
            }
            // The primary copy is backed and locally mapped.
            ASSERT_TRUE(maskHas(st.backed, st.location));
            const Pte* pte =
                system->driver().pageTable(st.location).lookup(vpn);
            ASSERT_NE(pte, nullptr);
            ASSERT_EQ(pte->location, st.location);
            // Backed set = primary + read duplicates, nothing else.
            ASSERT_EQ(st.backed,
                      maskSet(st.readCopies, st.location));
            maskForEach(st.backed,
                        [&](GpuId g) { ++expected_frames[g]; });
        }
        for (GpuId g = 0; g < 4; ++g) {
            ASSERT_EQ(system->gpu(g).memory().framesInUse(),
                      expected_frames[g]);
        }
    }

    std::unique_ptr<MultiGpuSystem> system;
    std::unique_ptr<UmEngine> engine;
    std::unique_ptr<TrafficMatrix> traffic;
    const Region* region = nullptr;
    PageNum firstVpn = 0;
    std::uint64_t pages = 0;
    KernelCounters counters;
};

TEST_P(UmFuzz, BaselineUmStateStaysConsistent)
{
    Rng rng(GetParam());
    for (int step = 0; step < 3000; ++step) {
        const GpuId gpu = static_cast<GpuId>(rng.below(4));
        const Addr addr = region->base + rng.below(region->size);
        const PageNum vpn = system->geometry().pageNum(addr);
        const MemAccess access =
            rng.chance(0.5) ? MemAccess::load(addr, 4)
                            : MemAccess::store(addr, 4);
        engine->access(gpu, access, vpn, false, counters, *traffic);
        if (step % 250 == 0)
            checkInvariants();
    }
    checkInvariants();
    // Fault-based UM never leaves more than one copy per page.
    for (PageNum vpn = firstVpn; vpn < firstVpn + pages; ++vpn)
        ASSERT_LE(maskCount(system->driver().state(vpn).backed), 1u);
}

TEST_P(UmFuzz, HintsAndDuplicationStayConsistent)
{
    Rng rng(GetParam() ^ 0x5555);
    // Hint setup: pin a quarter of the region, mark a quarter
    // read-mostly, declare everyone a reader of the rest.
    system->driver().advisePreferredLocation(region->base,
                                             4 * 64 * KiB, 1);
    system->driver().adviseReadMostly(region->base + 4 * 64 * KiB,
                                      4 * 64 * KiB);
    for (GpuId g = 0; g < 4; ++g) {
        system->driver().adviseAccessedBy(region->base + 8 * 64 * KiB,
                                          8 * 64 * KiB, g);
    }
    for (int step = 0; step < 3000; ++step) {
        const GpuId gpu = static_cast<GpuId>(rng.below(4));
        const Addr addr = region->base + rng.below(region->size);
        const PageNum vpn = system->geometry().pageNum(addr);
        const std::uint64_t op = rng.below(100);
        MemAccess access = op < 55   ? MemAccess::load(addr, 4)
                           : op < 95 ? MemAccess::store(addr, 4)
                                     : MemAccess::atomic(addr, 4);
        engine->access(gpu, access, vpn, true, counters, *traffic);
        if (op >= 98) {
            engine->prefetchRange(gpu, region->base + 8 * 64 * KiB,
                                  2 * 64 * KiB, counters, *traffic);
        }
        if (step % 250 == 0)
            checkInvariants();
    }
    checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UmFuzz,
                         ::testing::Values(11, 42, 0xfeedface));

} // namespace
} // namespace gps
