# Empty dependencies file for test_gps_page_table.
# This may be replaced when dependencies are built.
