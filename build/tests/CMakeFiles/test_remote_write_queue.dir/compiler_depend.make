# Empty compiler generated dependencies file for test_remote_write_queue.
# This may be replaced when dependencies are built.
