file(REMOVE_RECURSE
  "CMakeFiles/test_remote_write_queue.dir/test_remote_write_queue.cc.o"
  "CMakeFiles/test_remote_write_queue.dir/test_remote_write_queue.cc.o.d"
  "test_remote_write_queue"
  "test_remote_write_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_write_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
