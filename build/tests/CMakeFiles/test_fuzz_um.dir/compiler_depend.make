# Empty compiler generated dependencies file for test_fuzz_um.
# This may be replaced when dependencies are built.
