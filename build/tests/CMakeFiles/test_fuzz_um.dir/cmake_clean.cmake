file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_um.dir/test_fuzz_um.cc.o"
  "CMakeFiles/test_fuzz_um.dir/test_fuzz_um.cc.o.d"
  "test_fuzz_um"
  "test_fuzz_um.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_um.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
