# Empty dependencies file for test_units_config.
# This may be replaced when dependencies are built.
