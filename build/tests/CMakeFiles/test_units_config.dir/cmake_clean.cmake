file(REMOVE_RECURSE
  "CMakeFiles/test_units_config.dir/test_units_config.cc.o"
  "CMakeFiles/test_units_config.dir/test_units_config.cc.o.d"
  "test_units_config"
  "test_units_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_units_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
