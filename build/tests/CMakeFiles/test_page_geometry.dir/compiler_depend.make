# Empty compiler generated dependencies file for test_page_geometry.
# This may be replaced when dependencies are built.
