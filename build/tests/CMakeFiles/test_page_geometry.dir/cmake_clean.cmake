file(REMOVE_RECURSE
  "CMakeFiles/test_page_geometry.dir/test_page_geometry.cc.o"
  "CMakeFiles/test_page_geometry.dir/test_page_geometry.cc.o.d"
  "test_page_geometry"
  "test_page_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
