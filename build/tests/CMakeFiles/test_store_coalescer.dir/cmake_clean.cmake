file(REMOVE_RECURSE
  "CMakeFiles/test_store_coalescer.dir/test_store_coalescer.cc.o"
  "CMakeFiles/test_store_coalescer.dir/test_store_coalescer.cc.o.d"
  "test_store_coalescer"
  "test_store_coalescer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_coalescer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
