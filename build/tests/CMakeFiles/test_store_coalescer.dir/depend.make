# Empty dependencies file for test_store_coalescer.
# This may be replaced when dependencies are built.
