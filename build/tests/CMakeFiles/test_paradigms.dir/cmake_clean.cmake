file(REMOVE_RECURSE
  "CMakeFiles/test_paradigms.dir/test_paradigms.cc.o"
  "CMakeFiles/test_paradigms.dir/test_paradigms.cc.o.d"
  "test_paradigms"
  "test_paradigms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
