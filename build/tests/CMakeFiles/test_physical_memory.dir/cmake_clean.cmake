file(REMOVE_RECURSE
  "CMakeFiles/test_physical_memory.dir/test_physical_memory.cc.o"
  "CMakeFiles/test_physical_memory.dir/test_physical_memory.cc.o.d"
  "test_physical_memory"
  "test_physical_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
