# Empty dependencies file for test_access_tracker.
# This may be replaced when dependencies are built.
