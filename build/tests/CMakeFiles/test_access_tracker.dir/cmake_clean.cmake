file(REMOVE_RECURSE
  "CMakeFiles/test_access_tracker.dir/test_access_tracker.cc.o"
  "CMakeFiles/test_access_tracker.dir/test_access_tracker.cc.o.d"
  "test_access_tracker"
  "test_access_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
