file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_gps.dir/test_fuzz_gps.cc.o"
  "CMakeFiles/test_fuzz_gps.dir/test_fuzz_gps.cc.o.d"
  "test_fuzz_gps"
  "test_fuzz_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
