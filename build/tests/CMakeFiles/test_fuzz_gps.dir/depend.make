# Empty dependencies file for test_fuzz_gps.
# This may be replaced when dependencies are built.
