file(REMOVE_RECURSE
  "CMakeFiles/test_gps_paradigm.dir/test_gps_paradigm.cc.o"
  "CMakeFiles/test_gps_paradigm.dir/test_gps_paradigm.cc.o.d"
  "test_gps_paradigm"
  "test_gps_paradigm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gps_paradigm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
