# Empty compiler generated dependencies file for test_gps_paradigm.
# This may be replaced when dependencies are built.
