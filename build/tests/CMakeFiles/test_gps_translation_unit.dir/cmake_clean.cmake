file(REMOVE_RECURSE
  "CMakeFiles/test_gps_translation_unit.dir/test_gps_translation_unit.cc.o"
  "CMakeFiles/test_gps_translation_unit.dir/test_gps_translation_unit.cc.o.d"
  "test_gps_translation_unit"
  "test_gps_translation_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gps_translation_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
