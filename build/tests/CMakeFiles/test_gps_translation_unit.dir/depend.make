# Empty dependencies file for test_gps_translation_unit.
# This may be replaced when dependencies are built.
