file(REMOVE_RECURSE
  "CMakeFiles/test_um_engine.dir/test_um_engine.cc.o"
  "CMakeFiles/test_um_engine.dir/test_um_engine.cc.o.d"
  "test_um_engine"
  "test_um_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_um_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
