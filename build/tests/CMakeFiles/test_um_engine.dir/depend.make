# Empty dependencies file for test_um_engine.
# This may be replaced when dependencies are built.
