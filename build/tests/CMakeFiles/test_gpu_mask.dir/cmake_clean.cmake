file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_mask.dir/test_gpu_mask.cc.o"
  "CMakeFiles/test_gpu_mask.dir/test_gpu_mask.cc.o.d"
  "test_gpu_mask"
  "test_gpu_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
