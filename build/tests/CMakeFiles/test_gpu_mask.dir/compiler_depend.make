# Empty compiler generated dependencies file for test_gpu_mask.
# This may be replaced when dependencies are built.
