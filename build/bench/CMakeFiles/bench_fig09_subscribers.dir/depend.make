# Empty dependencies file for bench_fig09_subscribers.
# This may be replaced when dependencies are built.
