file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_subscribers.dir/bench_fig09_subscribers.cc.o"
  "CMakeFiles/bench_fig09_subscribers.dir/bench_fig09_subscribers.cc.o.d"
  "bench_fig09_subscribers"
  "bench_fig09_subscribers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_subscribers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
