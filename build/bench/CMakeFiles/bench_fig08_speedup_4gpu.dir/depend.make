# Empty dependencies file for bench_fig08_speedup_4gpu.
# This may be replaced when dependencies are built.
