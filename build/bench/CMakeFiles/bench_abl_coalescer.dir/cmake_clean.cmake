file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_coalescer.dir/bench_abl_coalescer.cc.o"
  "CMakeFiles/bench_abl_coalescer.dir/bench_abl_coalescer.cc.o.d"
  "bench_abl_coalescer"
  "bench_abl_coalescer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_coalescer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
