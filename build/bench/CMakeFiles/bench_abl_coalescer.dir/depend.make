# Empty dependencies file for bench_abl_coalescer.
# This may be replaced when dependencies are built.
