# Empty dependencies file for bench_fig03_bandwidth_gap.
# This may be replaced when dependencies are built.
