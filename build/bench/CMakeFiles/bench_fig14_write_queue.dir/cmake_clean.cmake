file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_write_queue.dir/bench_fig14_write_queue.cc.o"
  "CMakeFiles/bench_fig14_write_queue.dir/bench_fig14_write_queue.cc.o.d"
  "bench_fig14_write_queue"
  "bench_fig14_write_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_write_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
