file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_subscription.dir/bench_fig11_subscription.cc.o"
  "CMakeFiles/bench_fig11_subscription.dir/bench_fig11_subscription.cc.o.d"
  "bench_fig11_subscription"
  "bench_fig11_subscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_subscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
