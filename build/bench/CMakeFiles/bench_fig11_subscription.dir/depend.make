# Empty dependencies file for bench_fig11_subscription.
# This may be replaced when dependencies are built.
