file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_faults.dir/bench_ext_faults.cc.o"
  "CMakeFiles/bench_ext_faults.dir/bench_ext_faults.cc.o.d"
  "bench_ext_faults"
  "bench_ext_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
