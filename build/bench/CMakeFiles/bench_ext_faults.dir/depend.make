# Empty dependencies file for bench_ext_faults.
# This may be replaced when dependencies are built.
