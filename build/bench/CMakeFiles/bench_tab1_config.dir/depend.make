# Empty dependencies file for bench_tab1_config.
# This may be replaced when dependencies are built.
