file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_speedup_16gpu.dir/bench_fig12_speedup_16gpu.cc.o"
  "CMakeFiles/bench_fig12_speedup_16gpu.dir/bench_fig12_speedup_16gpu.cc.o.d"
  "bench_fig12_speedup_16gpu"
  "bench_fig12_speedup_16gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_speedup_16gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
