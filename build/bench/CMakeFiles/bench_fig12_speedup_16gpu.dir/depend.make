# Empty dependencies file for bench_fig12_speedup_16gpu.
# This may be replaced when dependencies are built.
