file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_applications.dir/bench_tab2_applications.cc.o"
  "CMakeFiles/bench_tab2_applications.dir/bench_tab2_applications.cc.o.d"
  "bench_tab2_applications"
  "bench_tab2_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
