# Empty dependencies file for bench_tab2_applications.
# This may be replaced when dependencies are built.
