file(REMOVE_RECURSE
  "CMakeFiles/bench_sens_gps_tlb.dir/bench_sens_gps_tlb.cc.o"
  "CMakeFiles/bench_sens_gps_tlb.dir/bench_sens_gps_tlb.cc.o.d"
  "bench_sens_gps_tlb"
  "bench_sens_gps_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_gps_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
