# Empty dependencies file for bench_sens_gps_tlb.
# This may be replaced when dependencies are built.
