# Empty dependencies file for bench_ext_nvlink.
# This may be replaced when dependencies are built.
