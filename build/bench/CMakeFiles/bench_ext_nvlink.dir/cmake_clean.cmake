file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_nvlink.dir/bench_ext_nvlink.cc.o"
  "CMakeFiles/bench_ext_nvlink.dir/bench_ext_nvlink.cc.o.d"
  "bench_ext_nvlink"
  "bench_ext_nvlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_nvlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
