# Empty compiler generated dependencies file for gps.
# This may be replaced when dependencies are built.
