
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/result_export.cc" "src/CMakeFiles/gps.dir/api/result_export.cc.o" "gcc" "src/CMakeFiles/gps.dir/api/result_export.cc.o.d"
  "/root/repo/src/api/runner.cc" "src/CMakeFiles/gps.dir/api/runner.cc.o" "gcc" "src/CMakeFiles/gps.dir/api/runner.cc.o.d"
  "/root/repo/src/api/system.cc" "src/CMakeFiles/gps.dir/api/system.cc.o" "gcc" "src/CMakeFiles/gps.dir/api/system.cc.o.d"
  "/root/repo/src/apps/als.cc" "src/CMakeFiles/gps.dir/apps/als.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/als.cc.o.d"
  "/root/repo/src/apps/ct.cc" "src/CMakeFiles/gps.dir/apps/ct.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/ct.cc.o.d"
  "/root/repo/src/apps/diffusion.cc" "src/CMakeFiles/gps.dir/apps/diffusion.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/diffusion.cc.o.d"
  "/root/repo/src/apps/eqwp.cc" "src/CMakeFiles/gps.dir/apps/eqwp.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/eqwp.cc.o.d"
  "/root/repo/src/apps/graph.cc" "src/CMakeFiles/gps.dir/apps/graph.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/graph.cc.o.d"
  "/root/repo/src/apps/hit.cc" "src/CMakeFiles/gps.dir/apps/hit.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/hit.cc.o.d"
  "/root/repo/src/apps/jacobi.cc" "src/CMakeFiles/gps.dir/apps/jacobi.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/jacobi.cc.o.d"
  "/root/repo/src/apps/nbody.cc" "src/CMakeFiles/gps.dir/apps/nbody.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/nbody.cc.o.d"
  "/root/repo/src/apps/pagerank.cc" "src/CMakeFiles/gps.dir/apps/pagerank.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/pagerank.cc.o.d"
  "/root/repo/src/apps/sssp.cc" "src/CMakeFiles/gps.dir/apps/sssp.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/sssp.cc.o.d"
  "/root/repo/src/apps/trace_workload.cc" "src/CMakeFiles/gps.dir/apps/trace_workload.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/trace_workload.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/CMakeFiles/gps.dir/apps/workload.cc.o" "gcc" "src/CMakeFiles/gps.dir/apps/workload.cc.o.d"
  "/root/repo/src/cache/cache_model.cc" "src/CMakeFiles/gps.dir/cache/cache_model.cc.o" "gcc" "src/CMakeFiles/gps.dir/cache/cache_model.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/gps.dir/common/config.cc.o" "gcc" "src/CMakeFiles/gps.dir/common/config.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/gps.dir/common/json.cc.o" "gcc" "src/CMakeFiles/gps.dir/common/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/gps.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/gps.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/gps.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/gps.dir/common/stats.cc.o.d"
  "/root/repo/src/core/access_tracker.cc" "src/CMakeFiles/gps.dir/core/access_tracker.cc.o" "gcc" "src/CMakeFiles/gps.dir/core/access_tracker.cc.o.d"
  "/root/repo/src/core/gps_page_table.cc" "src/CMakeFiles/gps.dir/core/gps_page_table.cc.o" "gcc" "src/CMakeFiles/gps.dir/core/gps_page_table.cc.o.d"
  "/root/repo/src/core/gps_paradigm.cc" "src/CMakeFiles/gps.dir/core/gps_paradigm.cc.o" "gcc" "src/CMakeFiles/gps.dir/core/gps_paradigm.cc.o.d"
  "/root/repo/src/core/gps_translation_unit.cc" "src/CMakeFiles/gps.dir/core/gps_translation_unit.cc.o" "gcc" "src/CMakeFiles/gps.dir/core/gps_translation_unit.cc.o.d"
  "/root/repo/src/core/remote_write_queue.cc" "src/CMakeFiles/gps.dir/core/remote_write_queue.cc.o" "gcc" "src/CMakeFiles/gps.dir/core/remote_write_queue.cc.o.d"
  "/root/repo/src/core/subscription.cc" "src/CMakeFiles/gps.dir/core/subscription.cc.o" "gcc" "src/CMakeFiles/gps.dir/core/subscription.cc.o.d"
  "/root/repo/src/driver/driver.cc" "src/CMakeFiles/gps.dir/driver/driver.cc.o" "gcc" "src/CMakeFiles/gps.dir/driver/driver.cc.o.d"
  "/root/repo/src/driver/um_engine.cc" "src/CMakeFiles/gps.dir/driver/um_engine.cc.o" "gcc" "src/CMakeFiles/gps.dir/driver/um_engine.cc.o.d"
  "/root/repo/src/fault/fault_engine.cc" "src/CMakeFiles/gps.dir/fault/fault_engine.cc.o" "gcc" "src/CMakeFiles/gps.dir/fault/fault_engine.cc.o.d"
  "/root/repo/src/fault/fault_plan.cc" "src/CMakeFiles/gps.dir/fault/fault_plan.cc.o" "gcc" "src/CMakeFiles/gps.dir/fault/fault_plan.cc.o.d"
  "/root/repo/src/gpu/gpu_model.cc" "src/CMakeFiles/gps.dir/gpu/gpu_model.cc.o" "gcc" "src/CMakeFiles/gps.dir/gpu/gpu_model.cc.o.d"
  "/root/repo/src/gpu/store_coalescer.cc" "src/CMakeFiles/gps.dir/gpu/store_coalescer.cc.o" "gcc" "src/CMakeFiles/gps.dir/gpu/store_coalescer.cc.o.d"
  "/root/repo/src/interconnect/link.cc" "src/CMakeFiles/gps.dir/interconnect/link.cc.o" "gcc" "src/CMakeFiles/gps.dir/interconnect/link.cc.o.d"
  "/root/repo/src/interconnect/pcie.cc" "src/CMakeFiles/gps.dir/interconnect/pcie.cc.o" "gcc" "src/CMakeFiles/gps.dir/interconnect/pcie.cc.o.d"
  "/root/repo/src/interconnect/platforms.cc" "src/CMakeFiles/gps.dir/interconnect/platforms.cc.o" "gcc" "src/CMakeFiles/gps.dir/interconnect/platforms.cc.o.d"
  "/root/repo/src/interconnect/topology.cc" "src/CMakeFiles/gps.dir/interconnect/topology.cc.o" "gcc" "src/CMakeFiles/gps.dir/interconnect/topology.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/gps.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/gps.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/gps.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/gps.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/physical_memory.cc" "src/CMakeFiles/gps.dir/mem/physical_memory.cc.o" "gcc" "src/CMakeFiles/gps.dir/mem/physical_memory.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/gps.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/gps.dir/mem/tlb.cc.o.d"
  "/root/repo/src/paradigm/infinite.cc" "src/CMakeFiles/gps.dir/paradigm/infinite.cc.o" "gcc" "src/CMakeFiles/gps.dir/paradigm/infinite.cc.o.d"
  "/root/repo/src/paradigm/memcpy_paradigm.cc" "src/CMakeFiles/gps.dir/paradigm/memcpy_paradigm.cc.o" "gcc" "src/CMakeFiles/gps.dir/paradigm/memcpy_paradigm.cc.o.d"
  "/root/repo/src/paradigm/paradigm.cc" "src/CMakeFiles/gps.dir/paradigm/paradigm.cc.o" "gcc" "src/CMakeFiles/gps.dir/paradigm/paradigm.cc.o.d"
  "/root/repo/src/paradigm/rdl.cc" "src/CMakeFiles/gps.dir/paradigm/rdl.cc.o" "gcc" "src/CMakeFiles/gps.dir/paradigm/rdl.cc.o.d"
  "/root/repo/src/paradigm/um.cc" "src/CMakeFiles/gps.dir/paradigm/um.cc.o" "gcc" "src/CMakeFiles/gps.dir/paradigm/um.cc.o.d"
  "/root/repo/src/paradigm/um_hints.cc" "src/CMakeFiles/gps.dir/paradigm/um_hints.cc.o" "gcc" "src/CMakeFiles/gps.dir/paradigm/um_hints.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/gps.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/gps.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/trace/kernel_trace.cc" "src/CMakeFiles/gps.dir/trace/kernel_trace.cc.o" "gcc" "src/CMakeFiles/gps.dir/trace/kernel_trace.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/gps.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/gps.dir/trace/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
