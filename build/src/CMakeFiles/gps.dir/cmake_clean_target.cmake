file(REMOVE_RECURSE
  "libgps.a"
)
