file(REMOVE_RECURSE
  "CMakeFiles/gpsim.dir/gpsim.cc.o"
  "CMakeFiles/gpsim.dir/gpsim.cc.o.d"
  "gpsim"
  "gpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
