# Empty dependencies file for gpsim.
# This may be replaced when dependencies are built.
