file(REMOVE_RECURSE
  "CMakeFiles/gps-trace.dir/gps_trace.cc.o"
  "CMakeFiles/gps-trace.dir/gps_trace.cc.o.d"
  "gps-trace"
  "gps-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
