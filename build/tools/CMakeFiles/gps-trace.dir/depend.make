# Empty dependencies file for gps-trace.
# This may be replaced when dependencies are built.
