# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gpsim_rejects_bad_numbers "/root/repo/build/tools/gpsim" "--gpus" "foo")
set_tests_properties(gpsim_rejects_bad_numbers PROPERTIES  PASS_REGULAR_EXPRESSION "invalid numeric value" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gpsim_rejects_bad_fault_spec "/root/repo/build/tools/gpsim" "--fault" "link:frob@0:0-1")
set_tests_properties(gpsim_rejects_bad_fault_spec PROPERTIES  PASS_REGULAR_EXPRESSION "fault spec" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gpsim_fault_smoke "/root/repo/build/tools/gpsim" "--app" "Jacobi" "--paradigm" "GPS" "--gpus" "4" "--scale" "0.125" "--fault" "link:down@0:0-1" "--fault-seed" "7" "--json")
set_tests_properties(gpsim_fault_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "\"faults\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
