/**
 * @file
 * Perf-regression gate: diff two BENCH_perf.json files.
 *
 * Compares the baseline's per-config rows (matched by the "config"
 * label) and the aggregate against the current file:
 *
 *   - replay throughput (macc_per_s): lower by more than the tolerance
 *     is a regression (host-machine dependent — use --soft in CI);
 *   - simulated time (sim_ms) and interconnect bytes: higher by more
 *     than the tolerance is a regression (deterministic outputs, so any
 *     drift is a real behavior change).
 *
 * Exit codes: 0 clean, 1 regression detected (suppressed by --soft),
 * 2 unreadable/malformed/schema-mismatched input. --soft keeps schema
 * and parse errors fatal, so CI always notices a broken producer.
 *
 * Usage:
 *   perf_compare [--tolerance P% | F] [--soft] baseline.json current.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace
{

using gps::JsonValue;

struct Options
{
    double tolerance = 0.05; // fractional, e.g. 0.05 = 5%
    bool soft = false;
    std::string baselinePath;
    std::string currentPath;
};

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--tolerance P%% | F] [--soft] <baseline.json> "
        "<current.json>\n"
        "  --tolerance   allowed relative drift (default 5%%); accepts\n"
        "                '10%%' or a fraction like 0.1\n"
        "  --soft        report regressions but exit 0 (schema and\n"
        "                parse errors still exit 2)\n",
        argv0);
    std::exit(2);
}

double
parseTolerance(const std::string& text, const char* argv0)
{
    std::string t = text;
    bool percent = false;
    if (!t.empty() && t.back() == '%') {
        percent = true;
        t.pop_back();
    }
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == nullptr || *end != '\0' || t.empty() || v < 0.0) {
        std::fprintf(stderr, "error: invalid tolerance '%s'\n",
                     text.c_str());
        usage(argv0);
    }
    return percent ? v / 100.0 : v;
}

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance") {
            if (i + 1 >= argc)
                usage(argv[0]);
            opt.tolerance = parseTolerance(argv[++i], argv[0]);
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            opt.tolerance = parseTolerance(arg.substr(12), argv[0]);
        } else if (arg == "--soft") {
            opt.soft = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2)
        usage(argv[0]);
    opt.baselinePath = positional[0];
    opt.currentPath = positional[1];
    return opt;
}

/** Load + parse + schema-check one perf log; exits 2 on any failure. */
std::unique_ptr<JsonValue>
loadPerfLog(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    std::unique_ptr<JsonValue> doc = gps::parseJson(text.str(), error);
    if (doc == nullptr) {
        std::fprintf(stderr, "error: %s: parse error: %s\n",
                     path.c_str(), error.c_str());
        std::exit(2);
    }
    if (!doc->isObject()) {
        std::fprintf(stderr, "error: %s: document is not an object\n",
                     path.c_str());
        std::exit(2);
    }
    const JsonValue* runs = doc->find("runs");
    if (runs == nullptr || !runs->isArray()) {
        std::fprintf(stderr,
                     "error: %s: schema mismatch: missing 'runs' array\n",
                     path.c_str());
        std::exit(2);
    }
    for (const JsonValue& run : runs->items()) {
        if (!run.isObject() || run.find("config") == nullptr ||
            !run.find("config")->isString()) {
            std::fprintf(stderr,
                         "error: %s: schema mismatch: run without a "
                         "'config' label\n",
                         path.c_str());
            std::exit(2);
        }
    }
    return doc;
}

struct Comparison
{
    int regressions = 0;
    int notes = 0;

    void
    regression(const std::string& what, double base, double cur,
               double drift)
    {
        ++regressions;
        std::printf("REGRESSION  %-40s %14.6g -> %14.6g  (%+.1f%%)\n",
                    what.c_str(), base, cur, drift * 100.0);
    }

    void
    note(const std::string& what, const std::string& detail)
    {
        ++notes;
        std::printf("note        %-40s %s\n", what.c_str(),
                    detail.c_str());
    }
};

/**
 * Compare one metric pair. @p worse_when_higher selects the regression
 * direction; improvements are never flagged.
 */
void
compareMetric(Comparison& cmp, const std::string& what, double base,
              double cur, double tolerance, bool worse_when_higher)
{
    if (base <= 0.0)
        return; // no meaningful reference
    const double drift = (cur - base) / base;
    const bool regressed = worse_when_higher ? drift > tolerance
                                             : drift < -tolerance;
    if (regressed)
        cmp.regression(what, base, cur, drift);
}

const JsonValue*
findRun(const JsonValue& doc, const std::string& label)
{
    for (const JsonValue& run : doc.find("runs")->items())
        if (run.string("config") == label)
            return &run;
    return nullptr;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parseArgs(argc, argv);
    const std::unique_ptr<JsonValue> base = loadPerfLog(opt.baselinePath);
    const std::unique_ptr<JsonValue> cur = loadPerfLog(opt.currentPath);

    Comparison cmp;

    // Aggregate throughput.
    compareMetric(cmp, "total.macc_per_s", base->number("macc_per_s"),
                  cur->number("macc_per_s"), opt.tolerance, false);

    // Warm-start fork efficiency: mean leader wall over mean follower
    // wall. Falling below the baseline means warm forking stopped
    // saving wall time. Compared only when both logs carry a nonzero
    // ratio — older baselines predate the field, and warm-disabled or
    // followerless runs report 0.
    const JsonValue* base_warm = base->find("warm");
    const JsonValue* cur_warm = cur->find("warm");
    if (base_warm != nullptr && cur_warm != nullptr &&
        cur_warm->number("fork_speedup") > 0.0)
        compareMetric(cmp, "warm.fork_speedup",
                      base_warm->number("fork_speedup"),
                      cur_warm->number("fork_speedup"), opt.tolerance,
                      false);
    else if (base_warm != nullptr && cur_warm != nullptr &&
             base_warm->number("fork_speedup") > 0.0)
        cmp.note("warm.fork_speedup",
                 "baseline forked warm starts, current run did not");

    // Per-config rows, matched by label. Rows only in one file are
    // informational: grids legitimately grow and shrink.
    for (const JsonValue& run : base->find("runs")->items()) {
        const std::string label = run.string("config");
        const JsonValue* match = findRun(*cur, label);
        if (match == nullptr) {
            cmp.note(label, "missing from current file");
            continue;
        }
        compareMetric(cmp, label + ".macc_per_s",
                      run.number("macc_per_s"),
                      match->number("macc_per_s"), opt.tolerance, false);
        compareMetric(cmp, label + ".sim_ms", run.number("sim_ms"),
                      match->number("sim_ms"), opt.tolerance, true);
        compareMetric(cmp, label + ".interconnect_bytes",
                      run.number("interconnect_bytes"),
                      match->number("interconnect_bytes"), opt.tolerance,
                      true);
    }
    for (const JsonValue& run : cur->find("runs")->items()) {
        const std::string label = run.string("config");
        if (findRun(*base, label) == nullptr)
            cmp.note(label, "new config (not in baseline)");
    }

    const std::size_t base_runs = base->find("runs")->items().size();
    std::printf("%d regression(s), %d note(s) over %zu baseline row(s) "
                "(tolerance %.1f%%)\n",
                cmp.regressions, cmp.notes, base_runs,
                opt.tolerance * 100.0);
    if (cmp.regressions > 0)
        return opt.soft ? 0 : 1;
    return 0;
}
