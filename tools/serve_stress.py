#!/usr/bin/env python3
"""Multi-client stress driver for `gpsim --serve` (CI serve-mode job).

Exercises the daemon the way the unit tests cannot: as a real process
behind a Unix socket, with concurrent clients, a kill -9 mid-load, a
restart that must recover the run store, and a byte-identity check of
store hits against the fresh run that published them.

Phases:
  1. stress     N clients x M requests over one socket: fresh configs,
                duplicates (store hits), no_cache reruns, 1 ms deadlines
                and racy cancels. Every request must get exactly one
                response.
  2. kill -9    SIGKILL the daemon while requests are in flight, then
                restart it on the same store. The restart must sweep
                orphaned temp files, serve no corrupted entry, and
                answer a phase-1 config byte-identically from the store.
  3. drain      SIGTERM with work queued: the daemon must exit cleanly.

Stdlib only; exit code 0 on success, 1 with a report otherwise.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def job(app="Jacobi", gpus=2, scale=0.0625, wq=512, **extra):
    spec = {"app": app, "gpus": gpus, "scale": scale, "wq_entries": wq}
    spec.update(extra)
    return spec


class Client(threading.Thread):
    """One connection: pipelines requests, collects response lines."""

    def __init__(self, path, name, requests):
        super().__init__(name=name)
        self.path = path
        self.requests = requests
        self.responses = []
        self.error = None

    def run(self):
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(self.path)
            expected = 0
            for req in self.requests:
                if req["method"] == "run":
                    expected += 1
                elif req["method"] == "batch":
                    expected += len(req["params"]["jobs"])
                else:
                    expected += 1  # cancel/stats/ping each ack once
                sock.sendall((json.dumps(req) + "\n").encode())
            buf = b""
            sock.settimeout(180)
            while len(self.responses) < expected:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    self.responses.append(json.loads(line))
            sock.close()
            if len(self.responses) != expected:
                self.error = (f"expected {expected} responses, "
                              f"got {len(self.responses)}")
        except Exception as exc:  # surfaced by the main thread
            self.error = f"{type(exc).__name__}: {exc}"


def start_daemon(gpsim, sock_path, store, workers=4):
    if os.path.exists(sock_path):
        os.unlink(sock_path)
    proc = subprocess.Popen(
        [gpsim, "--serve", "--socket", sock_path, "--store", store,
         "--serve-workers", str(workers), "--max-queue", "256"],
        stdout=subprocess.DEVNULL)
    for _ in range(200):
        if os.path.exists(sock_path):
            return proc
        if proc.poll() is not None:
            raise RuntimeError("daemon exited during startup")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon never created its socket")


def one_shot(sock_path, request, timeout=180):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(sock_path)
    sock.settimeout(timeout)
    sock.sendall((json.dumps(request) + "\n").encode())
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("daemon closed the connection early")
        buf += chunk
    sock.close()
    return json.loads(buf.split(b"\n", 1)[0])


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def phase_stress(args, sock_path):
    print(f"phase 1: {args.clients} clients x {args.requests} requests")
    clients = []
    for c in range(args.clients):
        reqs = []
        for i in range(args.requests):
            rid = i + 1
            if i % 9 == 4:
                # Batch mixing a cached duplicate with a deadline job.
                reqs.append({"id": rid, "method": "batch", "params": {
                    "jobs": [job(), job(wq=64, deadline_ms=1)]}})
            elif i % 7 == 3:
                reqs.append({"id": rid, "method": "run",
                             "params": job(wq=64 << (i % 4))})
                reqs.append({"id": rid + 1000, "method": "cancel",
                             "params": {"id": rid}})
            elif i % 5 == 2:
                reqs.append({"id": rid, "method": "run",
                             "params": job(no_cache=True)})
            else:
                reqs.append({"id": rid, "method": "run",
                             "params": job(wq=64 << (c % 3))})
        clients.append(Client(sock_path, f"client{c}", reqs))
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    statuses = {}
    for c in clients:
        if c.error:
            fail(f"{c.name}: {c.error}")
        for r in c.responses:
            statuses[r["status"]] = statuses.get(r["status"], 0) + 1
    print(f"  statuses: {statuses}")
    if statuses.get("ok", 0) == 0:
        fail("no request succeeded")
    stats = one_shot(sock_path, {"id": 99, "method": "stats"})
    print(f"  daemon stats: {json.dumps(stats['stats'])}")
    if stats["stats"]["store"]["quarantined"] != 0:
        fail("store quarantined entries during clean operation")


def phase_kill9(args, proc, sock_path, store, fresh):
    print("phase 2: kill -9 under load, restart, store recovery")
    # Get sustained load going, then SIGKILL mid-flight.
    lurker = Client(sock_path, "lurker", [
        {"id": i, "method": "run", "params": job(wq=96 + i, no_cache=True)}
        for i in range(1, 9)])
    lurker.start()
    time.sleep(0.3)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    lurker.join()  # connection drops; partial responses are expected

    proc = start_daemon(args.gpsim, sock_path, store)
    # The canonical phase-1 config must come back as a store hit,
    # byte-identical to the fresh run that published it.
    r = one_shot(sock_path, {"id": 1, "method": "run", "params": job()})
    if r["status"] != "ok":
        fail(f"post-restart run failed: {r}")
    if not r["store_hit"]:
        fail("post-restart run was not served from the store")
    if r["result"] != fresh:
        fail("store entry changed across kill -9")
    stats = one_shot(sock_path, {"id": 2, "method": "stats"})
    if stats["stats"]["store"]["quarantined"] != 0:
        fail("restart served/saw corrupted entries after kill -9")
    print(f"  recovered: store_hit={r['store_hit']}, "
          f"temps_swept={stats['stats']['store']['temps_swept']}")
    return proc


def phase_drain(proc, sock_path):
    print("phase 3: SIGTERM graceful drain")
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(sock_path)
    for i in range(4):
        req = {"id": i + 1, "method": "run", "params": job(wq=48 + i)}
        sock.sendall((json.dumps(req) + "\n").encode())
    time.sleep(0.2)
    os.kill(proc.pid, signal.SIGTERM)
    rc = proc.wait(timeout=120)
    sock.close()
    if rc != 0:
        fail(f"daemon exited {rc} on SIGTERM")
    print("  daemon drained and exited 0")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpsim", required=True)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=12)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="gps_serve_stress_")
    sock_path = os.path.join(workdir, "gpsim.sock")
    store = os.path.join(workdir, "store")

    proc = start_daemon(args.gpsim, sock_path, store)
    try:
        # The store is empty, so the canonical config's first run is
        # fresh; its payload anchors the identity checks below.
        fresh = one_shot(sock_path,
                         {"id": 1, "method": "run", "params": job()})
        if fresh["store_hit"]:
            fail("first run on an empty store was a store hit")
        fresh = fresh["result"]

        phase_stress(args, sock_path)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=120)

        proc = start_daemon(args.gpsim, sock_path, store)
        hit = one_shot(sock_path,
                       {"id": 1, "method": "run", "params": job()})
        if not hit["store_hit"]:
            fail("fresh daemon did not hit the store")
        if hit["result"] != fresh:
            fail("store hit is not identical to the fresh run")
        print("  restart store hit matches fresh run")

        proc = phase_kill9(args, proc, sock_path, store, fresh)
        phase_drain(proc, sock_path)
    finally:
        if proc.poll() is None:
            proc.kill()
    print("serve stress: all phases passed")


if __name__ == "__main__":
    main()
