/**
 * @file
 * gps-trace — capture, inspect and replay binary access traces.
 *
 * The NVBit-shaped interchange point of this reproduction: workload
 * generators are captured to trace files (one per iteration/phase/GPU)
 * plus a manifest, any trace file can be summarized, and a captured set
 * replays through the simulator under any paradigm — the paper's
 * capture-once / replay-many methodology. Externally captured traces
 * converted to this format replay the same way.
 *
 *   gps-trace capture Jacobi /tmp/jacobi --gpus 4 --scale 0.25
 *   gps-trace info /tmp/jacobi.iter0.phase0.gpu2.trc
 *   gps-trace replay /tmp/jacobi --paradigm GPS
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include <fstream>

#include "api/runner.hh"
#include "api/system.hh"
#include "apps/trace_workload.hh"
#include "apps/workload.hh"
#include "common/logging.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace gps;

int
capture(const std::string& app, const std::string& prefix,
        std::size_t gpus, double scale)
{
    SystemConfig config;
    config.numGpus = gpus;
    MultiGpuSystem system(config);
    auto paradigm = makeParadigm(ParadigmKind::Memcpy, system);
    WorkloadContext ctx(system, *paradigm);
    auto workload = makeWorkload(app);
    workload->setScale(scale);
    workload->setup(ctx);

    std::ofstream manifest(prefix + ".manifest");
    if (!manifest)
        gps_fatal("cannot write '", prefix, ".manifest'");
    manifest << "gps-trace-manifest 1\n";
    manifest << "page_bytes " << system.geometry().bytes() << "\n";
    manifest << "gpus " << gpus << "\n";
    manifest << "iterations 2\n";
    for (const auto& [base, region] :
         system.addressSpace().regions()) {
        manifest << "region " << region.base << " " << region.size
                 << " "
                 << (region.kind == MemKind::Pinned ? "private"
                                                    : "shared")
                 << " " << region.home << " " << region.label << "\n";
    }

    std::uint64_t total = 0;
    std::size_t phase_count = 0;
    std::string kernel_lines;
    // Capture the profiling iteration and one steady-state iteration.
    for (std::size_t iter = 0; iter < 2; ++iter) {
        std::vector<Phase> phases = workload->iteration(iter, ctx);
        if (iter == 0)
            phase_count = phases.size();
        for (std::size_t p = 0; p < phases.size(); ++p) {
            for (KernelLaunch& kernel : phases[p].kernels) {
                const std::string path =
                    prefix + ".iter" + std::to_string(iter) + ".phase" +
                    std::to_string(p) + ".gpu" +
                    std::to_string(kernel.gpu) + ".trc";
                TraceWriter writer(path);
                const std::uint64_t written =
                    writer.appendAll(*kernel.stream);
                total += written;
                kernel_lines += "kernel " + std::to_string(iter) + " " +
                                std::to_string(p) + " " +
                                std::to_string(kernel.gpu) + " " +
                                std::to_string(written) + " " +
                                std::to_string(kernel.computeInstrs) +
                                " " +
                                std::to_string(
                                    kernel.prechargedDramBytes) +
                                "\n";
                std::printf("%s: %llu records\n", path.c_str(),
                            static_cast<unsigned long long>(written));
            }
        }
    }
    manifest << "phases " << phase_count << "\n" << kernel_lines;
    std::printf("captured %llu records total (+ manifest)\n",
                static_cast<unsigned long long>(total));
    return 0;
}

int
replay(const std::string& prefix, const std::string& paradigm_name)
{
    apps::TraceReplayWorkload probe(prefix);
    RunConfig config;
    config.system.numGpus = probe.capturedGpus();
    config.system.pageBytes = probe.pageBytes();
    for (const ParadigmKind kind : allParadigms()) {
        if (paradigm_name == to_string(kind) ||
            (paradigm_name == "Infinite" &&
             kind == ParadigmKind::InfiniteBw)) {
            config.paradigm = kind;
        }
    }
    apps::TraceReplayWorkload workload(prefix);
    Runner runner(config);
    const RunResult result = runner.run(workload);
    std::printf("replayed '%s' under %s on %zu GPUs:\n",
                prefix.c_str(), result.paradigm.c_str(),
                result.numGpus);
    std::printf("  time          %.3f ms (extrapolated to %zu iters)\n",
                result.timeMs(), workload.effectiveIterations());
    std::printf("  traffic       %.2f MB\n",
                static_cast<double>(result.interconnectBytes) / 1e6);
    std::printf("  accesses      %llu (simulated)\n",
                static_cast<unsigned long long>(result.totals.accesses));
    std::printf("  wq hit rate   %.1f%%\n", result.wqHitRate * 100.0);
    return 0;
}

int
info(const std::string& path)
{
    TraceFileStream stream(path);
    std::map<AccessType, std::uint64_t> by_type;
    std::uint64_t sys_scoped = 0;
    std::uint64_t bytes = 0;
    Addr lo = ~Addr(0), hi = 0;
    MemAccess access;
    while (stream.next(access)) {
        ++by_type[access.type];
        bytes += access.size;
        if (access.scope == Scope::Sys)
            ++sys_scoped;
        lo = std::min(lo, access.vaddr);
        hi = std::max(hi, access.vaddr + access.size);
    }
    std::printf("%s\n", path.c_str());
    std::printf("  records      %llu\n",
                static_cast<unsigned long long>(stream.records()));
    std::printf("  loads        %llu\n",
                static_cast<unsigned long long>(
                    by_type[AccessType::Load]));
    std::printf("  stores       %llu\n",
                static_cast<unsigned long long>(
                    by_type[AccessType::Store]));
    std::printf("  atomics      %llu\n",
                static_cast<unsigned long long>(
                    by_type[AccessType::Atomic]));
    std::printf("  sys-scoped   %llu\n",
                static_cast<unsigned long long>(sys_scoped));
    std::printf("  payload      %.2f MB\n",
                static_cast<double>(bytes) / 1e6);
    if (hi > 0) {
        std::printf("  VA footprint [%llx, %llx) = %.2f MB\n",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi),
                    static_cast<double>(hi - lo) / 1e6);
    }
    return 0;
}

[[noreturn]] void
usage(int exit_code)
{
    std::printf("usage:\n"
                "  gps-trace capture <app> <prefix> [--gpus N] "
                "[--scale F]\n"
                "  gps-trace info <file.trc>\n"
                "  gps-trace replay <prefix> [--paradigm NAME]\n");
    std::exit(exit_code);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace gps;
    setVerbose(false);
    try {
        if (argc < 2)
            usage(1);
        const std::string command = argv[1];
        if (command == "info" && argc == 3)
            return info(argv[2]);
        if (command == "replay" && argc >= 3) {
            std::string paradigm = "GPS";
            for (int i = 3; i + 1 < argc; i += 2) {
                if (std::strcmp(argv[i], "--paradigm") == 0)
                    paradigm = argv[i + 1];
                else
                    usage(1);
            }
            return replay(argv[2], paradigm);
        }
        if (command == "capture" && argc >= 4) {
            std::size_t gpus = 4;
            double scale = 0.25;
            for (int i = 4; i + 1 < argc; i += 2) {
                if (std::strcmp(argv[i], "--gpus") == 0)
                    gpus = std::stoul(argv[i + 1]);
                else if (std::strcmp(argv[i], "--scale") == 0)
                    scale = std::stod(argv[i + 1]);
                else
                    usage(1);
            }
            return capture(argv[2], argv[3], gpus, scale);
        }
        usage(1);
    } catch (const FatalError& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
