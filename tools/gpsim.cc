/**
 * @file
 * gpsim — command-line front end for the GPS multi-GPU simulator.
 *
 * Runs any bundled workload under any memory-management paradigm on a
 * configurable system and prints time, traffic and speedup (plus the
 * full component statistics on request). The Swiss-army knife an
 * open-source release ships for quick experiments:
 *
 *   gpsim --app Jacobi --paradigm GPS --gpus 4 --interconnect pcie3
 *   gpsim --app all --paradigm all --gpus 16 --interconnect pcie6
 *   gpsim --app EQWP --paradigm GPS --stats
 *   gpsim --config
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "api/result_export.hh"
#include "api/runner.hh"
#include "api/sweep.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "fault/fault_plan.hh"
#include "obs/causal/whatif.hh"
#include "serve/protocol.hh"
#include "serve/run_store.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "snapshot/snapshot.hh"

namespace
{

using namespace gps;

struct Options
{
    std::vector<std::string> apps{"Jacobi"};
    std::vector<ParadigmKind> paradigms{ParadigmKind::Gps};
    std::size_t gpus = 4;
    InterconnectKind interconnect = InterconnectKind::Pcie3;
    std::size_t nodes = 1;
    InterconnectKind interNode = InterconnectKind::IbNdr;
    std::uint64_t pageBytes = 64 * KiB;
    double scale = 1.0;
    std::uint32_t wqEntries = 512;
    bool autoUnsubscribe = true;
    bool dumpStats = false;
    bool dumpConfig = false;
    bool json = false;
    std::vector<std::size_t> gpuSweep; ///< empty: just --gpus
    std::size_t jobs = 1; ///< sweep worker threads
    FaultPlan faultPlan;
    std::string metricsOut;  ///< metrics JSON path; empty disables
    std::string timelineOut; ///< trace JSON path; empty disables
    std::string profileOut;  ///< bottleneck profile JSON; empty disables
    std::string causalOut;   ///< causal graph + critical path JSON
    std::string whatifSpec;  ///< what-if scaling spec; empty disables
    double whatifTolerance = 0.0; ///< max error %; 0: report only
    double linkBwScale = 1.0;     ///< link-bandwidth multiplier
    double wqDrainScale = 1.0;    ///< RWQ drain-speed multiplier
    Tick sampleEvery = 0;    ///< metric sampling period in ticks
    std::size_t timelineMaxEvents = 1 << 20;
    std::size_t profileTop = 20;         ///< hot-page rows kept
    std::uint64_t profileBucketPages = 1; ///< pages per heat bucket
    bool check = false;          ///< differential validation
    std::uint64_t checkEvery = 0; ///< mid-run invariant cadence
    std::string snapshotOut;     ///< checkpoint file; empty disables
    snapshot::SnapshotPoint snapshotAt; ///< when to capture
    std::string restorePath;     ///< resume from this checkpoint
    bool serve = false;          ///< daemon mode (stdio or socket)
    std::string socketPath;      ///< unix socket; empty: serve stdio
    ServeConfig serveConfig;     ///< scheduler + store settings
};

/**
 * Strict numeric flag parsing: the whole token must be a non-negative
 * integer. std::stoul alone would accept trailing junk, wrap negatives
 * and throw uncaught std::invalid_argument/std::out_of_range on garbage.
 */
std::uint64_t
parseUnsigned(const char* flag, const std::string& text)
{
    std::size_t consumed = 0;
    std::uint64_t value = 0;
    try {
        if (text.empty() || text[0] == '-' || text[0] == '+')
            throw std::invalid_argument(text);
        value = std::stoull(text, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != text.size())
        gps_fatal("invalid numeric value '", text, "' for ", flag);
    return value;
}

/** Strict floating-point flag parsing (same contract as above). */
double
parseFloat(const char* flag, const std::string& text)
{
    std::size_t consumed = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != text.size())
        gps_fatal("invalid numeric value '", text, "' for ", flag);
    return value;
}

[[noreturn]] void
usage(const char* argv0, int exit_code)
{
    std::printf(
        "usage: %s [options]\n"
        "  --app <name|all>          workload (default Jacobi): %s\n"
        "  --paradigm <name|all>     UM | UM+hints | RDL | Memcpy | GPS"
        " | Infinite (default GPS)\n"
        "  --gpus <n>                GPU count (default 4)\n"
        "  --interconnect <k>        pcie3|pcie4|pcie5|pcie6|nvlink2|"
        "nvlink3|infinite\n"
        "  --nodes <n>               split the GPUs across n nodes "
        "joined by\n"
        "                            --inter-node uplinks (default 1: "
        "flat)\n"
        "  --inter-node <k>          inter-node fabric: ib-hdr|ib-ndr|"
        "pcie-fabric\n"
        "                            (default ib-ndr)\n"
        "  --page-kb <n>             page size in KiB (default 64)\n"
        "  --scale <f>               problem scale factor (default 1.0)\n"
        "  --wq-entries <n>          GPS remote write queue size "
        "(default 512)\n"
        "  --no-unsubscribe          keep the all-to-all subscription\n"
        "  --sweep-gpus <a,b,c>      strong-scaling sweep over GPU"
        " counts\n"
        "  --jobs <n|auto>           run the config grid on n worker"
        " threads\n"
        "                            (results stay in deterministic"
        " order; default 1)\n"
        "  --fault <spec>            inject a fault (repeatable), e.g.\n"
        "                            link:down@2ms:gpu0-gpu1,\n"
        "                            link:degrade@1ms:0-1:0.25,\n"
        "                            page:retire@1ms:gpu2:16,\n"
        "                            wq:saturate@0:*\n"
        "  --fault-plan <file.json>  load a JSON fault plan\n"
        "  --fault-seed <n>          seed for fault victim selection\n"
        "  --no-pcie-fallback        unreachable partitions are fatal\n"
        "  --metrics-out <file>      write per-component metrics JSON\n"
        "                            (and print per-GPU/per-link tables)\n"
        "  --timeline-out <file>     write a Chrome trace-event JSON\n"
        "                            (open in Perfetto / about:tracing)\n"
        "  --timeline-max-events <n> timeline event cap before dropping\n"
        "                            (default 1048576)\n"
        "  --profile-out <file>      write the bottleneck-attribution\n"
        "                            profile JSON (per-kernel breakdown,\n"
        "                            hot pages, latency histograms)\n"
        "  --profile-top <n>         hot-page rows to keep (default 20)\n"
        "  --profile-bucket-pages <n>  pages per heat bucket (default 1)\n"
        "  --sample-every <ticks>    metric sampling period in simulated\n"
        "                            ticks (default 0: final values only)\n"
        "  --causal-out <file>       record the causal activity graph and\n"
        "                            write it (with the critical-path\n"
        "                            attribution) as JSON\n"
        "  --whatif <spec>           predict the speedup of scaled\n"
        "                            resources from a causally traced\n"
        "                            run, then validate against a real\n"
        "                            re-run, e.g. link_bw=2x,rwq_drain=2x\n"
        "  --whatif-tolerance <pct>  exit 1 when the what-if prediction\n"
        "                            error exceeds this percentage\n"
        "                            (default 0: report only)\n"
        "  --link-bw-scale <f>       scale every link's bandwidth\n"
        "                            (default 1.0)\n"
        "  --wq-drain-scale <f>      scale RWQ drain-stall charges down\n"
        "                            by this factor (default 1.0)\n"
        "  --log-format <text|json>  warn/info line encoding (default\n"
        "                            text; json emits one object per\n"
        "                            line for log shippers)\n"
        "  --check[=N]               differential validation: replay the\n"
        "                            run through the reference model and\n"
        "                            assert runtime invariants (every N\n"
        "                            accesses when given); exit 1 on any\n"
        "                            divergence\n"
        "  --snapshot-out <file>     write a checkpoint of the full\n"
        "                            simulator state (see\n"
        "                            docs/checkpoint.md)\n"
        "  --snapshot-at <spec>      when to capture: profile |\n"
        "                            iter:N | phase:N (default profile)\n"
        "  --restore <file>          resume a run from a checkpoint;\n"
        "                            results are byte-identical to the\n"
        "                            uninterrupted run\n"
        "  --serve                   run as a sweep service (see\n"
        "                            docs/service.md): line-delimited\n"
        "                            JSON requests on stdin or --socket\n"
        "  --socket <path>           serve a unix domain socket instead\n"
        "                            of stdin/stdout\n"
        "  --store <dir>             content-addressed run store for\n"
        "                            serve mode (crash-safe result reuse)\n"
        "  --serve-workers <n|auto>  serve-mode worker threads (default"
        " 2)\n"
        "  --max-queue <n>           admission queue bound before the\n"
        "                            service sheds load (default 64)\n"
        "  --default-deadline-ms <n> deadline applied to jobs that do\n"
        "                            not carry one (default 0: none)\n"
        "  --json                    one JSON object per run on stdout\n"
        "  --stats                   dump full component statistics\n"
        "  --config                  print the Table 1 configuration and"
        " exit\n"
        "  --help                    this text\n",
        argv0,
        [] {
            static std::string names;
            for (const auto& n : workloadNames())
                names += n + " ";
            return names.c_str();
        }());
    std::exit(exit_code);
}

Options
parseArgs(int argc, char** argv)
{
    Options opts;
    auto value = [&](int& i) -> const char* {
        if (i + 1 >= argc)
            usage(argv[0], 1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--app") {
            const std::string v = value(i);
            opts.apps = v == "all" ? workloadNames()
                                   : std::vector<std::string>{v};
        } else if (arg == "--paradigm") {
            const std::string v = value(i);
            if (v == "all") {
                opts.paradigms = allParadigms();
            } else {
                opts.paradigms = {paradigmFromName(v)};
            }
        } else if (arg == "--gpus") {
            opts.gpus = parseUnsigned("--gpus", value(i));
        } else if (arg == "--interconnect") {
            opts.interconnect = interconnectFromName(value(i));
        } else if (arg == "--nodes") {
            opts.nodes =
                std::max<std::uint64_t>(parseUnsigned("--nodes",
                                                      value(i)), 1);
        } else if (arg == "--inter-node") {
            opts.interNode = interconnectFromName(value(i));
        } else if (arg == "--page-kb") {
            opts.pageBytes = parseUnsigned("--page-kb", value(i)) * KiB;
        } else if (arg == "--scale") {
            opts.scale = parseFloat("--scale", value(i));
        } else if (arg == "--wq-entries") {
            opts.wqEntries = static_cast<std::uint32_t>(
                parseUnsigned("--wq-entries", value(i)));
        } else if (arg == "--fault") {
            opts.faultPlan.addSpec(value(i));
        } else if (arg == "--fault-plan") {
            FaultPlan loaded = FaultPlan::fromJsonFile(value(i));
            for (const FaultEvent& ev : loaded.events)
                opts.faultPlan.events.push_back(ev);
            opts.faultPlan.seed = loaded.seed;
            opts.faultPlan.pcieFallback = loaded.pcieFallback;
        } else if (arg == "--fault-seed") {
            opts.faultPlan.seed = parseUnsigned("--fault-seed", value(i));
        } else if (arg == "--no-pcie-fallback") {
            opts.faultPlan.pcieFallback = false;
        } else if (arg == "--metrics-out") {
            opts.metricsOut = value(i);
        } else if (arg == "--timeline-out") {
            opts.timelineOut = value(i);
        } else if (arg == "--timeline-max-events") {
            opts.timelineMaxEvents = static_cast<std::size_t>(
                parseUnsigned("--timeline-max-events", value(i)));
        } else if (arg == "--profile-out") {
            opts.profileOut = value(i);
        } else if (arg == "--profile-top") {
            opts.profileTop = static_cast<std::size_t>(
                parseUnsigned("--profile-top", value(i)));
        } else if (arg == "--profile-bucket-pages") {
            opts.profileBucketPages =
                parseUnsigned("--profile-bucket-pages", value(i));
            if (opts.profileBucketPages == 0)
                gps_fatal("--profile-bucket-pages must be >= 1");
        } else if (arg == "--sample-every") {
            opts.sampleEvery = parseUnsigned("--sample-every", value(i));
        } else if (arg == "--causal-out") {
            opts.causalOut = value(i);
        } else if (arg == "--whatif") {
            opts.whatifSpec = value(i);
        } else if (arg == "--whatif-tolerance") {
            opts.whatifTolerance =
                parseFloat("--whatif-tolerance", value(i));
            if (opts.whatifTolerance < 0.0)
                gps_fatal("--whatif-tolerance must be >= 0");
        } else if (arg == "--link-bw-scale") {
            opts.linkBwScale = parseFloat("--link-bw-scale", value(i));
            if (opts.linkBwScale <= 0.0)
                gps_fatal("--link-bw-scale must be > 0");
        } else if (arg == "--wq-drain-scale") {
            opts.wqDrainScale = parseFloat("--wq-drain-scale", value(i));
            if (opts.wqDrainScale <= 0.0)
                gps_fatal("--wq-drain-scale must be > 0");
        } else if (arg == "--log-format") {
            const std::string v = value(i);
            if (v == "text")
                setLogFormat(LogFormat::Text);
            else if (v == "json")
                setLogFormat(LogFormat::Json);
            else
                gps_fatal("invalid --log-format '", v,
                          "': expected text or json");
        } else if (arg == "--check") {
            opts.check = true;
        } else if (arg.rfind("--check=", 0) == 0) {
            opts.check = true;
            opts.checkEvery =
                parseUnsigned("--check", arg.substr(8));
        } else if (arg == "--no-unsubscribe") {
            opts.autoUnsubscribe = false;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--sweep-gpus") {
            std::string list = value(i);
            std::size_t pos = 0;
            while (pos < list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string item =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                opts.gpuSweep.push_back(
                    parseUnsigned("--sweep-gpus", item));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (arg == "--jobs") {
            const std::string v = value(i);
            opts.jobs = v == "auto"
                            ? defaultSweepJobs()
                            : std::max<std::uint64_t>(
                                  parseUnsigned("--jobs", v), 1);
        } else if (arg == "--snapshot-out") {
            opts.snapshotOut = value(i);
            if (!opts.snapshotAt.active())
                opts.snapshotAt = {snapshot::AtKind::Profile, 0};
        } else if (arg == "--snapshot-at") {
            const std::string v = value(i);
            if (!snapshot::parseSnapshotPoint(v, opts.snapshotAt))
                gps_fatal("invalid --snapshot-at '", v,
                          "': expected profile, iter:N or phase:N");
        } else if (arg == "--restore") {
            opts.restorePath = value(i);
        } else if (arg == "--serve") {
            opts.serve = true;
        } else if (arg == "--socket") {
            opts.socketPath = value(i);
        } else if (arg == "--store") {
            opts.serveConfig.storeDir = value(i);
        } else if (arg == "--serve-workers") {
            const std::string v = value(i);
            opts.serveConfig.workers =
                v == "auto" ? defaultSweepJobs()
                            : std::max<std::uint64_t>(
                                  parseUnsigned("--serve-workers", v), 1);
        } else if (arg == "--max-queue") {
            opts.serveConfig.maxQueue = std::max<std::uint64_t>(
                parseUnsigned("--max-queue", value(i)), 1);
        } else if (arg == "--default-deadline-ms") {
            opts.serveConfig.defaultDeadlineMs =
                parseUnsigned("--default-deadline-ms", value(i));
        } else if (arg == "--stats") {
            opts.dumpStats = true;
        } else if (arg == "--config") {
            opts.dumpConfig = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0], 1);
        }
    }
    opts.faultPlan.sort();
    return opts;
}

RunConfig
makeConfig(const Options& opts)
{
    RunConfig config;
    config.system.numGpus = opts.gpus;
    config.system.interconnect = opts.interconnect;
    config.system.numNodes = opts.nodes;
    config.system.interNode = opts.interNode;
    config.system.pageBytes = opts.pageBytes;
    config.system.gps.wqEntries = opts.wqEntries;
    config.system.gps.autoUnsubscribe = opts.autoUnsubscribe;
    config.scale = opts.scale;
    config.faultPlan = opts.faultPlan;
    config.obs.metrics = !opts.metricsOut.empty();
    config.obs.timeline = !opts.timelineOut.empty();
    config.obs.sampleEvery = opts.sampleEvery;
    config.obs.maxTimelineEvents = opts.timelineMaxEvents;
    config.obs.profile = !opts.profileOut.empty();
    config.obs.profileTopN = opts.profileTop;
    config.obs.profilePagesPerBucket = opts.profileBucketPages;
    config.obs.causal = !opts.causalOut.empty();
    config.system.linkBandwidthScale = opts.linkBwScale;
    config.system.gps.wqDrainScale = opts.wqDrainScale;
    config.check.enabled = opts.check;
    config.check.everyAccesses = opts.checkEvery;
    return config;
}

/**
 * Per-row differential-validation verdict.
 * @return true when the run diverged from the reference model.
 */
bool
printCheckSummary(const RunResult& result)
{
    if (result.check == nullptr)
        return false;
    const CheckReport& check = *result.check;
    if (check.ok()) {
        std::printf("    check: OK (%llu invariant checks, %llu counter "
                    "checks, %llu ref accesses)\n",
                    static_cast<unsigned long long>(check.invariantChecks),
                    static_cast<unsigned long long>(check.counterChecks),
                    static_cast<unsigned long long>(check.refAccesses));
        return false;
    }
    std::printf("    check: DIVERGED (%llu divergence(s))\n",
                static_cast<unsigned long long>(check.divergences));
    for (const CheckFinding& finding : check.findings)
        std::printf("      %s\n", describe(finding).c_str());
    return true;
}

/** Per-GPU and per-link breakdown from a run's metric snapshot. */
void
printObsBreakdown(const ObsReport& report, std::size_t gpus)
{
    const auto metric = [&report](const std::string& name) {
        for (const MetricValue& m : report.finals)
            if (m.name == name)
                return m.value;
        return 0.0;
    };
    std::printf("    per-GPU:\n");
    std::printf("    %6s %12s %12s %8s %12s %8s\n", "gpu", "l2_hits",
                "l2_misses", "l2_hit", "tlb_misses", "tlb_hit");
    for (std::size_t g = 0; g < gpus; ++g) {
        const std::string p = "gpu" + std::to_string(g) + '.';
        std::printf("    %6zu %12.0f %12.0f %7.1f%% %12.0f %7.1f%%\n", g,
                    metric(p + "l2.hits"), metric(p + "l2.misses"),
                    metric(p + "l2.hit_rate") * 100.0,
                    metric(p + "tlb.misses"),
                    metric(p + "tlb.hit_rate") * 100.0);
    }
    std::printf("    per-link:\n");
    std::printf("    %6s %12s %12s %12s %12s\n", "gpu", "egress_MB",
                "egress_us", "ingress_MB", "ingress_us");
    for (std::size_t g = 0; g < gpus; ++g) {
        const std::string p =
            "interconnect.gpu" + std::to_string(g) + '.';
        std::printf("    %6zu %12.2f %12.1f %12.2f %12.1f\n", g,
                    metric(p + "egress.bytes") / 1e6,
                    metric(p + "egress.busy_us"),
                    metric(p + "ingress.bytes") / 1e6,
                    metric(p + "ingress.busy_us"));
    }
}

void
writeTextFile(const std::string& path, const std::string& text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        gps_fatal("cannot open '", path, "' for writing");
    out << text;
    if (!out.flush())
        gps_fatal("write to '", path, "' failed");
}

/**
 * Fail fast on unwritable output paths — before the simulation runs, so
 * a typo'd directory costs seconds, not a completed run's worth of work.
 * Append mode probes writability without truncating an existing file.
 */
void
requireWritable(const char* flag, const std::string& path)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        gps_fatal("cannot open '", path, "' for writing (", flag, ")");
}

/** Text summary of the bottleneck profile (full detail is in the JSON). */
void
printProfileSummary(const ObsReport& report)
{
    const ProfileReport& prof = report.profile;
    std::printf("    bottlenecks:\n");
    std::printf("    %-14s %4s %10s  %-10s %8s %8s %8s\n", "phase", "gpu",
                "time(ms)", "limiter", "dram%", "link%", "remote%");
    for (const BottleneckProfile& k : prof.kernels) {
        const auto shares = k.shares();
        const auto& names = BottleneckProfile::componentNames();
        double dram = 0.0, link = 0.0, remote = 0.0;
        for (std::size_t i = 0; i < shares.size(); ++i) {
            const std::string name = names[i];
            if (name == "dram")
                dram = shares[i];
            else if (name == "egress" || name == "ingress")
                link += shares[i];
            else if (name == "remote")
                remote = shares[i];
        }
        std::printf("    %-14s %4u %10.3f  %-10s %7.1f%% %7.1f%% %7.1f%%\n",
                    k.phase.c_str(), static_cast<unsigned>(k.gpu),
                    ticksToMs(k.total), k.limiter(), dram * 100.0,
                    link * 100.0, remote * 100.0);
    }
    if (!prof.hotPages.empty()) {
        std::printf("    hot pages (top %zu of %llu buckets, %llu "
                    "page(s)/bucket):\n",
                    prof.hotPages.size(),
                    static_cast<unsigned long long>(prof.totalHotBuckets),
                    static_cast<unsigned long long>(prof.pagesPerBucket));
        std::printf("    %10s %-16s %12s %12s %8s %8s\n", "vpn", "region",
                    "rwq_bytes", "rem_writes", "subflip", "migrate");
        for (const HotPage& page : prof.hotPages) {
            std::printf(
                "    %10llu %-16s %12llu %12llu %8llu %8llu\n",
                static_cast<unsigned long long>(page.firstVpn),
                page.region.c_str(),
                static_cast<unsigned long long>(page.heat.rwqBytes),
                static_cast<unsigned long long>(
                    page.heat.remoteWritesForwarded),
                static_cast<unsigned long long>(page.heat.subFlips),
                static_cast<unsigned long long>(page.heat.migrations));
        }
    }
}

/**
 * --whatif mode: trace one run causally, predict the effect of the
 * requested resource scaling, then re-run for real and report the
 * prediction error. Exit 1 when --whatif-tolerance is exceeded.
 */
int
runWhatIf(const Options& opts)
{
    WhatIfSpec spec;
    std::string error;
    if (!parseWhatIfSpec(opts.whatifSpec, spec, error))
        gps_fatal("invalid --whatif '", opts.whatifSpec, "': ", error);
    if (opts.apps.size() != 1 || opts.paradigms.size() != 1 ||
        !opts.gpuSweep.empty())
        gps_fatal("--whatif applies to a single run: one --app, one "
                  "--paradigm, no --sweep-gpus");
    if (opts.check || !opts.snapshotOut.empty() ||
        !opts.restorePath.empty())
        gps_fatal("--whatif cannot be combined with --check or "
                  "snapshots");

    RunConfig config = makeConfig(opts);
    config.paradigm = opts.paradigms.front();
    const std::string& app = opts.apps.front();
    const WhatIfValidation v = validateWhatIf(app, config, spec);

    if (!opts.causalOut.empty())
        writeTextFile(opts.causalOut, causalToJson(v.traced));

    if (opts.json) {
        JsonWriter w;
        w.beginObject();
        w.field("workload", app);
        w.field("paradigm", to_string(config.paradigm));
        w.field("whatif", to_string(spec));
        w.field("base_time_ms", ticksToMs(v.prediction.baseTime));
        w.field("predicted_time_ms",
                ticksToMs(v.prediction.predictedTime));
        w.field("actual_time_ms", ticksToMs(v.actualTime));
        w.field("predicted_speedup", v.prediction.speedup);
        w.field("actual_speedup", v.actualSpeedup);
        w.field("error_pct", v.errorPct);
        w.endObject();
        std::printf("%s\n", w.str().c_str());
    } else {
        std::printf("%-10s %s what-if %s\n", app.c_str(),
                    to_string(config.paradigm).c_str(),
                    to_string(spec).c_str());
        std::printf("    base:      %10.3f ms\n",
                    ticksToMs(v.prediction.baseTime));
        std::printf("    predicted: %10.3f ms  (%.2fx)\n",
                    ticksToMs(v.prediction.predictedTime),
                    v.prediction.speedup);
        std::printf("    actual:    %10.3f ms  (%.2fx)\n",
                    ticksToMs(v.actualTime), v.actualSpeedup);
        std::printf("    error:     %9.2f%%\n", v.errorPct);
    }
    if (opts.whatifTolerance > 0.0 && v.errorPct > opts.whatifTolerance) {
        std::fprintf(stderr,
                     "what-if prediction error %.2f%% exceeds "
                     "tolerance %.2f%%\n",
                     v.errorPct, opts.whatifTolerance);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace gps;
    setVerbose(false);
    try {
        const Options opts = parseArgs(argc, argv);
        if (opts.serve) {
            SweepService service(opts.serveConfig);
            ServeFrontEnd front(service);
            ServeFrontEnd::installSignalHandlers();
            return opts.socketPath.empty()
                       ? front.runStdio()
                       : front.runSocket(opts.socketPath);
        }
        if (opts.dumpConfig) {
            MultiGpuSystem system(makeConfig(opts).system);
            std::printf("%s", system.configDump().render().c_str());
            return 0;
        }

        requireWritable("--metrics-out", opts.metricsOut);
        requireWritable("--timeline-out", opts.timelineOut);
        requireWritable("--profile-out", opts.profileOut);
        requireWritable("--causal-out", opts.causalOut);

        if (!opts.whatifSpec.empty())
            return runWhatIf(opts);
        if (opts.whatifTolerance != 0.0)
            gps_fatal("--whatif-tolerance requires --whatif");

        const bool snapshotting =
            !opts.snapshotOut.empty() || !opts.restorePath.empty();
        if (opts.snapshotAt.active() && opts.snapshotOut.empty())
            gps_fatal("--snapshot-at requires --snapshot-out");
        if (snapshotting) {
            // A checkpoint names one exact run; a grid would silently
            // capture or restore only one of its cells.
            if (opts.apps.size() != 1 || opts.paradigms.size() != 1 ||
                !opts.gpuSweep.empty())
                gps_fatal("--snapshot-out/--restore apply to a single "
                          "run: one --app, one --paradigm, no "
                          "--sweep-gpus");
            if (opts.check)
                gps_fatal("--snapshot-out/--restore cannot be combined "
                          "with --check");
            if (!opts.profileOut.empty())
                gps_fatal("--snapshot-out/--restore cannot be combined "
                          "with --profile-out");
            requireWritable("--snapshot-out", opts.snapshotOut);
        }

        std::vector<std::size_t> gpu_counts =
            opts.gpuSweep.empty()
                ? std::vector<std::size_t>{opts.gpus}
                : opts.gpuSweep;
        if (!opts.json) {
            std::printf("%-10s %-12s %5s %10s %12s %9s %8s %8s\n",
                        "app", "paradigm", "gpus", "time(ms)",
                        "traffic(MB)", "speedup", "l2_hit", "wq_hit");
        }
        // Build the full job list in print order — one single-GPU
        // reference per app followed by that app's config grid — then
        // fan it across --jobs worker threads. Results come back in
        // input order, so the serial print loop below emits output
        // byte-identical to --jobs 1.
        std::vector<SweepJob> jobs;
        for (const std::string& app : opts.apps) {
            RunConfig base_config = makeConfig(opts);
            base_config.system.numGpus = 1;
            base_config.system.numNodes = 1;
            base_config.paradigm = ParadigmKind::Memcpy;
            base_config.faultPlan = FaultPlan{}; // fault-free reference
            base_config.obs = ObsConfig{}; // observe only the cells
            jobs.push_back({app, base_config, "baseline"});
            for (const std::size_t gpus : gpu_counts) {
                for (const ParadigmKind paradigm : opts.paradigms) {
                    RunConfig config = makeConfig(opts);
                    config.system.numGpus = gpus;
                    config.paradigm = paradigm;
                    if (snapshotting) {
                        config.snapshotAt = opts.snapshotAt;
                        config.snapshotOut = opts.snapshotOut;
                        config.restoreFrom = opts.restorePath;
                    }
                    jobs.push_back({app, config, "cell"});
                }
            }
        }
        const std::vector<SweepOutcome> outcomes =
            runSweep(jobs, opts.jobs);

        std::shared_ptr<const ObsReport> last_obs;
        std::size_t obs_cells = 0;
        std::size_t idx = 0;
        bool check_diverged = false;
        bool run_failed = false;
        // A failed grid point becomes a structured error row — the
        // remaining cells still print (exit code stays non-zero).
        const auto print_error_row = [&](const std::string& app,
                                         ParadigmKind paradigm,
                                         std::size_t gpus,
                                         const SweepOutcome& outcome) {
            run_failed = true;
            if (opts.json) {
                JsonWriter w;
                w.beginObject();
                w.field("workload", app);
                w.field("paradigm", to_string(paradigm));
                w.field("num_gpus", static_cast<std::uint64_t>(gpus));
                w.key("error").beginObject();
                w.field("type", outcome.errorType);
                w.field("message", outcome.errorMessage);
                w.endObject();
                w.endObject();
                std::printf("%s\n", w.str().c_str());
            } else {
                std::printf("%-10s %-12s %5zu ERROR %s: %s\n",
                            app.c_str(), to_string(paradigm).c_str(),
                            gpus, outcome.errorType.c_str(),
                            outcome.errorMessage.c_str());
            }
        };
        for (const std::string& app : opts.apps) {
            const SweepOutcome& base_outcome = outcomes.at(idx++);
            if (!base_outcome.ok())
                std::rethrow_exception(base_outcome.error);
            const RunResult& baseline = base_outcome.result;
            if (baseline.check != nullptr && !baseline.check->ok()) {
                std::printf("%-10s baseline\n", app.c_str());
                check_diverged |= printCheckSummary(baseline);
            }

            for (const std::size_t gpus : gpu_counts) {
                for (const ParadigmKind paradigm : opts.paradigms) {
                    const SweepOutcome& outcome = outcomes.at(idx++);
                    if (!outcome.ok()) {
                        print_error_row(app, paradigm, gpus, outcome);
                        continue;
                    }
                    const RunResult& result = outcome.result;
                    if (result.obs != nullptr) {
                        last_obs = result.obs;
                        ++obs_cells;
                    }
                    if (opts.json) {
                        std::printf(
                            "%s\n",
                            resultToJson(result, opts.dumpStats)
                                .c_str());
                        check_diverged |= result.check != nullptr &&
                                          !result.check->ok();
                        continue;
                    }
                    std::printf(
                        "%-10s %-12s %5zu %10.3f %12.1f %8.2fx %7.1f%%"
                        " %7.1f%%\n",
                        app.c_str(), to_string(paradigm).c_str(), gpus,
                        result.timeMs(),
                        static_cast<double>(result.interconnectBytes) /
                            1e6,
                        speedupOver(baseline, result),
                        result.l2HitRate * 100.0,
                        result.wqHitRate * 100.0);
                    if (result.hasFaultReport) {
                        const FaultReport& fr = result.faultReport;
                        std::printf(
                            "    faults: injected=%llu reroutes=%llu "
                            "pcie_fallbacks=%llu pages_retired=%llu "
                            "resubscribes=%llu wq_stall_drains=%llu "
                            "stall_ms=%.3f\n",
                            static_cast<unsigned long long>(
                                fr.faultsInjected),
                            static_cast<unsigned long long>(fr.reroutes),
                            static_cast<unsigned long long>(
                                fr.pcieFallbacks),
                            static_cast<unsigned long long>(
                                fr.pagesRetired),
                            static_cast<unsigned long long>(
                                fr.resubscribes),
                            static_cast<unsigned long long>(
                                fr.wqSaturatedDrains),
                            ticksToMs(fr.stallTicks));
                    }
                    check_diverged |= printCheckSummary(result);
                    if (result.obs != nullptr && result.obs->hasMetrics)
                        printObsBreakdown(*result.obs, gpus);
                    if (result.obs != nullptr && result.obs->hasProfile)
                        printProfileSummary(*result.obs);
                    if (opts.dumpStats) {
                        std::printf(
                            "%s", result.stats.dump("    ").c_str());
                    }
                }
            }
        }
        if (last_obs != nullptr) {
            if (obs_cells > 1)
                gps_warn("observability files reflect only the last of ",
                         obs_cells, " runs");
            if (!opts.metricsOut.empty())
                writeTextFile(opts.metricsOut, metricsToJson(*last_obs));
            if (!opts.timelineOut.empty())
                writeTextFile(opts.timelineOut,
                              timelineToJson(*last_obs));
            if (!opts.profileOut.empty())
                writeTextFile(opts.profileOut, profileToJson(*last_obs));
            if (!opts.causalOut.empty() && last_obs->hasCausal)
                writeTextFile(opts.causalOut,
                              causalToJson(last_obs->causal));
            if (last_obs->timelineDropped > 0)
                gps_warn("timeline truncated: ",
                         last_obs->timelineDropped,
                         " event(s) dropped past the cap; raise "
                         "--timeline-max-events");
        }
        return (check_diverged || run_failed) ? 1 : 0;
    } catch (const FatalError& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
