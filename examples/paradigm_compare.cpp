/**
 * @file
 * Compare every memory-management paradigm on one workload and print the
 * detailed component statistics behind the result.
 *
 * Usage: paradigm_compare [workload] [num_gpus] [--stats]
 *   workload: Jacobi | Pagerank | SSSP | ALS | CT | EQWP | Diffusion | HIT
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "api/runner.hh"

int
main(int argc, char** argv)
{
    using namespace gps;
    setVerbose(false);

    std::string workload = argc > 1 ? argv[1] : "Jacobi";
    std::size_t num_gpus = argc > 2 ? std::stoul(argv[2]) : 4;
    const bool dump_stats =
        argc > 3 && std::strcmp(argv[3], "--stats") == 0;

    RunConfig config;
    config.system.numGpus = num_gpus;
    config.system.interconnect = InterconnectKind::Pcie3;

    RunConfig base_config = config;
    base_config.system.numGpus = 1;
    base_config.paradigm = ParadigmKind::Memcpy;
    const RunResult baseline = runWorkload(workload, base_config);
    std::printf("workload %s, %zu GPUs, baseline %.3f ms\n",
                workload.c_str(), num_gpus, baseline.timeMs());

    std::printf("%-12s %10s %12s %8s %8s %8s %8s\n", "paradigm",
                "time(ms)", "traffic(MB)", "speedup", "l2_hit",
                "wq_hit", "faults");
    for (const ParadigmKind paradigm : allParadigms()) {
        config.paradigm = paradigm;
        const RunResult result = runWorkload(workload, config);
        std::printf("%-12s %10.3f %12.1f %7.2fx %7.1f%% %7.1f%% %8.0f\n",
                    to_string(paradigm).c_str(), result.timeMs(),
                    static_cast<double>(result.interconnectBytes) / 1e6,
                    speedupOver(baseline, result),
                    result.l2HitRate * 100.0, result.wqHitRate * 100.0,
                    static_cast<double>(result.totals.pageFaults));
        if (dump_stats) {
            std::printf("%s",
                        result.stats.dump("    ").c_str());
        }
    }
    return 0;
}
