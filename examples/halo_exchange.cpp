/**
 * @file
 * Manual subscription on a stencil: drives the GPS driver API directly
 * (the Section 4 programming interface) instead of going through the
 * bundled workloads.
 *
 * A 1-D field is slab-partitioned over the GPUs. Each GPU subscribes
 * only to its own slab plus its neighbors' boundary pages — exactly the
 * subscription set automatic profiling would discover — then runs a few
 * stencil sweeps and reports where the stores went.
 */

#include <cstdio>

#include "core/gps_paradigm.hh"
#include "trace/access.hh"

int
main()
{
    using namespace gps;
    setVerbose(false);

    SystemConfig config;
    config.numGpus = 4;
    MultiGpuSystem system(config);
    GpsParadigm paradigm(system);
    Driver& driver = system.driver();

    const std::uint64_t page = system.geometry().bytes();
    const std::size_t pages_per_gpu = 8;
    const std::uint64_t field_bytes = 4 * pages_per_gpu * page;

    // Allocate in the GPS address space with *manual* subscription
    // management (the optional cudaMallocGPS parameter of Section 4).
    const Region& field = driver.mallocGps(field_bytes, "field",
                                           /*home=*/0, /*manual=*/true);
    paradigm.onSetupComplete();

    // Subscribe every GPU to its slab, plus the adjacent boundary page
    // on each side (CU_MEM_ADVISE_GPS_SUBSCRIBE).
    for (GpuId g = 0; g < 4; ++g) {
        const Addr slab = field.base + g * pages_per_gpu * page;
        paradigm.manualSubscribe(slab, pages_per_gpu * page, g);
        if (g > 0)
            paradigm.manualSubscribe(slab - page, page, g);
        if (g < 3)
            paradigm.manualSubscribe(slab + pages_per_gpu * page, page,
                                     g);
    }

    // GPU0 still holds the allocation-time backing of remote slabs; an
    // expert would unsubscribe it from pages it will not touch.
    for (GpuId g = 1; g < 4; ++g) {
        const Addr slab = field.base + g * pages_per_gpu * page;
        const UnsubscribeResult result = paradigm.manualUnsubscribe(
            slab + page, (pages_per_gpu - 2) * page, /*gpu=*/0);
        std::printf("unsubscribe GPU0 from slab %u interior: %s\n", g,
                    result == UnsubscribeResult::LastSubscriber
                        ? "refused (last subscriber)"
                        : "ok");
    }

    // Run three stencil sweeps: each GPU reads its slab + halo pages
    // and stores its slab. Stores to boundary pages are forwarded to
    // the subscribed neighbor only.
    KernelCounters counters;
    TrafficMatrix traffic(4);
    const std::uint32_t line = config.gpu.cacheLineBytes;
    for (int sweep = 0; sweep < 3; ++sweep) {
        for (GpuId g = 0; g < 4; ++g) {
            const Addr slab = field.base + g * pages_per_gpu * page;
            const Addr lo = g > 0 ? slab - page : slab;
            const Addr hi = g < 3 ? slab + pages_per_gpu * page
                                  : slab + pages_per_gpu * page - page;
            for (Addr a = lo; a < hi; a += line) {
                const MemAccess load = MemAccess::load(a, line);
                const PageNum vpn = system.geometry().pageNum(a);
                const bool miss = system.gpu(g).tlbAccess(vpn, counters);
                paradigm.access(g, load, vpn, miss, counters, traffic);
            }
            for (Addr a = slab; a < slab + pages_per_gpu * page;
                 a += line) {
                const MemAccess store = MemAccess::store(a, line);
                const PageNum vpn = system.geometry().pageNum(a);
                const bool miss = system.gpu(g).tlbAccess(vpn, counters);
                paradigm.access(g, store, vpn, miss, counters, traffic);
            }
            paradigm.endKernel(g, counters, traffic);
        }
    }

    std::printf("\nafter 3 sweeps on a %zu-page field:\n",
                static_cast<std::size_t>(4 * pages_per_gpu));
    std::printf("  remote demand loads      %llu (subscribed loads stay"
                " local)\n",
                static_cast<unsigned long long>(counters.remoteLoads));
    std::printf("  write-queue drains       %llu\n",
                static_cast<unsigned long long>(counters.wqDrains));
    std::printf("  pushed store payload     %.2f MB\n",
                static_cast<double>(counters.pushedStoreBytes) / 1e6);
    for (GpuId src = 0; src < 4; ++src) {
        std::printf("  GPU%u egress:", src);
        for (GpuId dst = 0; dst < 4; ++dst)
            std::printf(" %8llu",
                        static_cast<unsigned long long>(
                            traffic.at(src, dst)));
        std::printf("  bytes\n");
    }
    std::printf(
        "\nonly boundary pages produce inter-GPU traffic; interior\n"
        "pages' stores have a single subscriber and were demoted to\n"
        "conventional pages. GPU0 kept its allocation-time subscription\n"
        "to the slab-boundary pages it was never unsubscribed from —\n"
        "subscription lists need not be minimal to be correct (§3.2),\n"
        "they only cost the extra forwarded bytes shown above.\n");
    return 0;
}
