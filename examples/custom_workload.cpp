/**
 * @file
 * Writing your own workload against the public API: a producer/consumer
 * ring where each GPU writes a buffer its right-hand neighbor reads in
 * the next phase. Runs under every paradigm and prints the comparison.
 */

#include <cstdio>

#include "api/runner.hh"
#include "apps/app_common.hh"

namespace
{

using namespace gps;

/** Ring pipeline: GPU g produces a buffer consumed by GPU g+1. */
class RingWorkload : public Workload
{
  public:
    std::string name() const override { return "Ring"; }
    std::string description() const override
    {
        return "Producer/consumer ring pipeline";
    }
    std::string commPattern() const override { return "Peer-to-peer"; }
    std::size_t effectiveIterations() const override { return 100; }

    void
    setup(WorkloadContext& ctx) override
    {
        gpus_ = ctx.numGpus();
        bufLines_ = 4096; // 512 KB per ring segment
        buffers_ =
            ctx.allocShared(segments_ * bufLines_ * 128, "ring.buf");
    }

    std::vector<Phase>
    iteration(std::size_t iter, WorkloadContext& ctx) override
    {
        (void)iter;
        (void)ctx;
        Phase phase;
        phase.name = "ring.step";
        for (std::size_t g = 0; g < gpus_; ++g) {
            const GpuId gpu = static_cast<GpuId>(g);
            // Strong scaling: the same 8 ring segments are dealt among
            // the GPUs; each GPU consumes its segments' upstream
            // neighbors and produces its own.
            std::vector<apps::Group> groups;
            std::uint64_t owned = 0;
            for (std::size_t s = g; s < segments_; s += gpus_) {
                const Addr own = buffers_ + s * bufLines_ * 128;
                const Addr upstream =
                    buffers_ +
                    ((s + segments_ - 1) % segments_) * bufLines_ * 128;
                groups.push_back(apps::Group{{
                    apps::Burst{upstream, bufLines_, 128,
                                AccessType::Load, 128, Scope::Weak},
                    apps::Burst{own, bufLines_, 128, AccessType::Store,
                                128, Scope::Weak},
                }});
                phase.barrierBroadcasts.push_back(
                    BroadcastRange{gpu, own, bufLines_ * 128});
                ++owned;
            }

            KernelLaunch kernel;
            kernel.gpu = gpu;
            kernel.name = "ring.step";
            kernel.computeInstrs = owned * bufLines_ * 32 * 160;
            kernel.stream = apps::makeGroupStream(std::move(groups));
            phase.kernels.push_back(std::move(kernel));
        }
        std::vector<Phase> phases;
        phases.push_back(std::move(phase));
        return phases;
    }

    void
    applyUmHints(WorkloadContext& ctx) override
    {
        for (std::size_t s = 0; s < segments_; ++s) {
            const Addr own = buffers_ + s * bufLines_ * 128;
            const GpuId owner = static_cast<GpuId>(s % gpus_);
            const GpuId reader =
                static_cast<GpuId>((s + 1) % segments_ % gpus_);
            ctx.driver().advisePreferredLocation(own, bufLines_ * 128,
                                                 owner);
            ctx.driver().adviseAccessedBy(own, bufLines_ * 128, reader);
        }
    }

  private:
    static constexpr std::size_t segments_ = 8;
    std::size_t gpus_ = 0;
    std::uint64_t bufLines_ = 0;
    Addr buffers_ = 0;
};

} // namespace

int
main()
{
    using namespace gps;
    setVerbose(false);

    RunConfig config;
    config.system.numGpus = 4;

    RunConfig base_config = config;
    base_config.system.numGpus = 1;
    base_config.paradigm = ParadigmKind::Memcpy;
    RingWorkload baseline_workload;
    const RunResult baseline =
        Runner(base_config).run(baseline_workload);

    std::printf("custom 'Ring' workload, 4 GPUs vs 1 GPU "
                "(baseline %.3f ms):\n",
                baseline.timeMs());
    std::printf("%-12s %10s %12s %9s\n", "paradigm", "time(ms)",
                "traffic(MB)", "speedup");
    for (const ParadigmKind paradigm : allParadigms()) {
        RingWorkload workload;
        config.paradigm = paradigm;
        const RunResult result = Runner(config).run(workload);
        std::printf("%-12s %10.3f %12.1f %8.2fx\n",
                    to_string(paradigm).c_str(), result.timeMs(),
                    static_cast<double>(result.interconnectBytes) / 1e6,
                    speedupOver(baseline, result));
    }
    return 0;
}
