/**
 * @file
 * Quickstart: build a 4-GPU PCIe 3.0 system, run the Jacobi workload
 * under GPS and under plain Unified Memory, and compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "api/runner.hh"

int
main()
{
    using namespace gps;
    setVerbose(false);

    // Table 1 system: 4 V100-class GPUs on PCIe 3.0, 64 KB pages.
    RunConfig config;
    config.system.numGpus = 4;
    config.system.interconnect = InterconnectKind::Pcie3;
    config.scale = 1.0;

    // Single-GPU reference (no inter-GPU communication of any kind).
    RunConfig base_config = config;
    base_config.system.numGpus = 1;
    base_config.paradigm = ParadigmKind::Memcpy;
    const RunResult baseline = runWorkload("Jacobi", base_config);

    std::printf("%-12s %10s %12s %10s\n", "paradigm", "time(ms)",
                "traffic(MB)", "speedup");
    for (const ParadigmKind paradigm :
         {ParadigmKind::Um, ParadigmKind::Memcpy, ParadigmKind::Gps}) {
        config.paradigm = paradigm;
        const RunResult result = runWorkload("Jacobi", config);
        std::printf("%-12s %10.3f %12.1f %9.2fx\n",
                    to_string(paradigm).c_str(), result.timeMs(),
                    static_cast<double>(result.interconnectBytes) / 1e6,
                    speedupOver(baseline, result));
    }
    std::printf("1 GPU reference: %.3f ms\n", baseline.timeMs());
    return 0;
}
